package core

import (
	"errors"
	"testing"

	"feww/internal/stream"
	"feww/internal/workload"
)

func runInsertOnly(t *testing.T, cfg InsertOnlyConfig, ups []stream.Update) (*InsertOnly, Neighbourhood, error) {
	t.Helper()
	algo, err := NewInsertOnly(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range ups {
		if u.Op != stream.Insert {
			t.Fatal("insertion-only test fed a deletion")
		}
		algo.ProcessEdge(u.A, u.B)
	}
	nb, resErr := algo.Result()
	return algo, nb, resErr
}

func plantedInstance(t *testing.T, order workload.Order, seed uint64) *workload.Planted {
	t.Helper()
	p, err := workload.NewPlanted(workload.PlantedConfig{
		N: 500, M: 2000, Heavy: 1, HeavyDeg: 60,
		NoiseEdges: 3000, Order: order, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInsertOnlyAllOrders(t *testing.T) {
	for _, order := range []workload.Order{workload.Shuffled, workload.HeavyFirst, workload.HeavyLast, workload.Interleaved} {
		t.Run(order.String(), func(t *testing.T) {
			p := plantedInstance(t, order, 100+uint64(order))
			_, nb, err := runInsertOnly(t, InsertOnlyConfig{N: 500, D: 60, Alpha: 2, Seed: 7}, p.Updates)
			if err != nil {
				t.Fatalf("algorithm failed: %v", err)
			}
			if int64(nb.Size()) < 30 {
				t.Fatalf("got %d witnesses, want >= ceil(60/2) = 30", nb.Size())
			}
			if err := p.Verify(nb.A, nb.Witnesses); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestInsertOnlyAlphaSweep(t *testing.T) {
	p := plantedInstance(t, workload.Shuffled, 42)
	for _, alpha := range []int{1, 2, 3, 4, 5} {
		t.Run(string(rune('0'+alpha)), func(t *testing.T) {
			algo, nb, err := runInsertOnly(t, InsertOnlyConfig{N: 500, D: 60, Alpha: alpha, Seed: 9}, p.Updates)
			if err != nil {
				t.Fatalf("alpha=%d failed: %v", alpha, err)
			}
			want := algo.WitnessTarget()
			if int64(nb.Size()) < want {
				t.Fatalf("alpha=%d: %d witnesses, want >= %d", alpha, nb.Size(), want)
			}
			if err := p.Verify(nb.A, nb.Witnesses); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestInsertOnlyAlphaOneIsExact(t *testing.T) {
	// With alpha = 1 the reservoir size is >= n, so the single run stores
	// every vertex and must find the full d witnesses deterministically.
	p := plantedInstance(t, workload.Shuffled, 77)
	for trial := uint64(0); trial < 5; trial++ {
		_, nb, err := runInsertOnly(t, InsertOnlyConfig{N: 500, D: 60, Alpha: 1, Seed: trial}, p.Updates)
		if err != nil {
			t.Fatalf("alpha=1 trial %d failed: %v", trial, err)
		}
		if nb.Size() != 60 {
			t.Fatalf("alpha=1: got %d witnesses, want 60", nb.Size())
		}
		if nb.A != p.HeavyA[0] {
			t.Fatalf("alpha=1 reported %d, want planted %d", nb.A, p.HeavyA[0])
		}
	}
}

func TestInsertOnlyPromiseViolated(t *testing.T) {
	// No vertex reaches degree d: the algorithm must fail cleanly, never
	// fabricate.
	p := plantedInstance(t, workload.Shuffled, 5)
	_, _, err := runInsertOnly(t, InsertOnlyConfig{N: 500, D: 2000, Alpha: 2, Seed: 3}, p.Updates)
	if !errors.Is(err, ErrNoWitness) {
		t.Fatalf("got %v, want ErrNoWitness", err)
	}
}

func TestInsertOnlyEmptyStream(t *testing.T) {
	_, _, err := runInsertOnly(t, InsertOnlyConfig{N: 10, D: 1, Alpha: 1, Seed: 1}, nil)
	if !errors.Is(err, ErrNoWitness) {
		t.Fatalf("empty stream: got %v", err)
	}
}

func TestInsertOnlySuccessRate(t *testing.T) {
	// Theorem 3.2 promises success w.p. >= 1 - 1/n.  Measure over trials;
	// tolerate a generous margin to keep the test deterministic-ish.
	const trials = 30
	failures := 0
	for trial := 0; trial < trials; trial++ {
		p, err := workload.NewPlanted(workload.PlantedConfig{
			N: 300, M: 1000, Heavy: 1, HeavyDeg: 40,
			NoiseEdges: 1500, Order: workload.Shuffled, Seed: 1000 + uint64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		algo, err := NewInsertOnly(InsertOnlyConfig{N: 300, D: 40, Alpha: 3, Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range p.Updates {
			algo.ProcessEdge(u.A, u.B)
		}
		if _, err := algo.Result(); err != nil {
			failures++
		}
	}
	if failures > 2 {
		t.Fatalf("failed %d/%d trials; Theorem 3.2 promises ~1/n failure rate", failures, trials)
	}
}

func TestInsertOnlySmallScaleDegrades(t *testing.T) {
	// Sanity for the ScaleFactor knob: a tiny reservoir must lower the
	// reservoir size.
	cfg := InsertOnlyConfig{N: 1000, D: 50, Alpha: 2, ScaleFactor: 0.01}
	full := InsertOnlyConfig{N: 1000, D: 50, Alpha: 2}
	if cfg.ReservoirSize() >= full.ReservoirSize() {
		t.Fatalf("ScaleFactor did not shrink the reservoir: %d vs %d", cfg.ReservoirSize(), full.ReservoirSize())
	}
}

func TestInsertOnlyConfigValidation(t *testing.T) {
	bad := []InsertOnlyConfig{
		{N: 0, D: 1, Alpha: 1},
		{N: 1, D: 0, Alpha: 1},
		{N: 1, D: 1, Alpha: 0},
		{N: 1, D: 1, Alpha: 1, ScaleFactor: -1},
	}
	for i, cfg := range bad {
		if _, err := NewInsertOnly(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestInsertOnlyRejectsDeletionViaInterface(t *testing.T) {
	algo, err := NewInsertOnly(InsertOnlyConfig{N: 10, D: 2, Alpha: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := algo.ProcessUpdate(1, 1, -1); err == nil {
		t.Fatal("deletion accepted by insertion-only algorithm")
	}
	if err := algo.ProcessUpdate(1, 1, 1); err != nil {
		t.Fatalf("insertion rejected: %v", err)
	}
}

func TestInsertOnlySpaceScalesWithAlpha(t *testing.T) {
	// Larger alpha => smaller reservoirs (n^{1/alpha}) => less space on the
	// same stream, despite more parallel runs.  This is the headline space
	// behaviour of Theorem 3.2, checked end-to-end.
	p, err := workload.NewPlanted(workload.PlantedConfig{
		N: 2000, M: 5000, Heavy: 1, HeavyDeg: 100,
		NoiseEdges: 8000, Order: workload.Shuffled, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	space := func(alpha int) int {
		algo, err := NewInsertOnly(InsertOnlyConfig{N: 2000, D: 100, Alpha: alpha, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range p.Updates {
			algo.ProcessEdge(u.A, u.B)
		}
		return algo.SpaceWords()
	}
	s1, s4 := space(1), space(4)
	if s4 >= s1 {
		t.Fatalf("space did not shrink with alpha: alpha=1 %d words, alpha=4 %d words", s1, s4)
	}
}

func TestInsertOnlyBestNeverExceedsResult(t *testing.T) {
	p := plantedInstance(t, workload.Shuffled, 21)
	algo, nb, err := runInsertOnly(t, InsertOnlyConfig{N: 500, D: 60, Alpha: 2, Seed: 5}, p.Updates)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := algo.Best()
	if !ok {
		t.Fatal("Best empty after success")
	}
	if best.Size() < nb.Size() {
		t.Fatalf("Best (%d) smaller than Result (%d)", best.Size(), nb.Size())
	}
	if err := p.Verify(best.A, best.Witnesses); err != nil {
		t.Fatal(err)
	}
}
