package core

import (
	"feww/internal/reservoir"
	"feww/internal/stream"
	"feww/internal/xrand"
)

// DegreeTracker maintains the degree of every A-vertex seen so far.  In
// Algorithm 2 a single tracker is shared by all alpha parallel
// Deg-Res-Sampling runs, so its O(n log n) bits are paid once (as in the
// space accounting of Theorem 3.2).
type DegreeTracker struct {
	deg map[int64]int64
}

// NewDegreeTracker returns an empty tracker.
func NewDegreeTracker() *DegreeTracker {
	return &DegreeTracker{deg: make(map[int64]int64)}
}

// Inc increments the degree of a and returns the new degree.
func (t *DegreeTracker) Inc(a int64) int64 {
	t.deg[a]++
	return t.deg[a]
}

// Degree returns the current degree of a.
func (t *DegreeTracker) Degree(a int64) int64 { return t.deg[a] }

// SpaceWords counts two words (key, counter) per tracked vertex.
func (t *DegreeTracker) SpaceWords() int { return 2 * len(t.deg) }

// candidate is a reservoir occupant: a sampled A-vertex and the witnesses
// collected for it since it entered the reservoir.
type candidate struct {
	a         int64
	witnesses []int64
}

// DegRes is Deg-Res-Sampling(d1, d2, s) — Algorithm 1.  It maintains a
// uniform random sample of size s of the A-vertices whose current degree is
// at least d1 (vertices become sample candidates the moment their degree
// reaches d1), and collects up to d2 incident edges for each sampled
// vertex.  The run succeeds if some sampled vertex accumulates d2
// witnesses, which by Lemma 3.1 happens with probability at least
// 1 - exp(-s*n2/n1) when n1 vertices have degree >= d1 and n2 of them have
// degree >= d1 + d2 - 1.
type DegRes struct {
	d1, d2 int64
	res    *reservoir.Reservoir[*candidate]
	pos    map[int64]*candidate // vertex -> its live reservoir entry
	spare  *candidate           // recycled offer struct; see Process
}

// NewDegRes returns a Deg-Res-Sampling run with thresholds d1, d2 and
// reservoir size s.  Randomness is drawn from rng.
func NewDegRes(rng *xrand.RNG, d1, d2 int64, s int) *DegRes {
	if d1 < 1 || d2 < 1 {
		panic("core: NewDegRes with d1 < 1 or d2 < 1")
	}
	if s < 1 {
		panic("core: NewDegRes with s < 1")
	}
	return &DegRes{
		d1:  d1,
		d2:  d2,
		res: reservoir.New[*candidate](rng, s),
		pos: make(map[int64]*candidate, s),
	}
}

// Process handles the stream edge (a, b).  degA must be a's degree
// including this edge, as maintained by the caller's shared DegreeTracker.
//
// This is the body of Algorithm 1's while-loop: when degA reaches d1 the
// vertex is offered to the reservoir (admitted with probability s/x, where
// x counts candidates so far; an admitted vertex may evict a uniformly
// random occupant, whose collected witnesses are discarded).  Afterwards,
// if a currently occupies the reservoir and has fewer than d2 witnesses,
// the edge is collected — including the triggering edge itself, so a vertex
// of final degree deg collects min(d2, deg - d1 + 1) witnesses.
//
// The offer path is engineered to stay allocation-free once the stream is
// past its ramp-up: a rejected offer (the overwhelmingly common outcome,
// probability 1 - s/x) recycles its candidate struct through dr.spare, and
// an eviction recycles the displaced struct — witness buffer included,
// truncated to length zero with its grown capacity kept — the same way.
// An admission therefore reuses the previous eviction's buffer and only
// allocates while the reservoir is still filling (or when a recycled
// buffer has not yet grown to d2 capacity).  Reusing evicted buffers means
// their old contents are overwritten in place, which is why Result,
// Results and Best below copy witnesses out instead of aliasing them.
func (dr *DegRes) Process(a, b int64, degA int64) {
	if degA == dr.d1 {
		cand := dr.spare
		if cand == nil {
			cand = &candidate{}
		}
		cand.a = a
		admitted, evicted, didEvict := dr.res.Offer(cand)
		if admitted {
			dr.spare = nil
			dr.pos[a] = cand
			if didEvict {
				delete(dr.pos, evicted.a)
				evicted.witnesses = evicted.witnesses[:0]
				dr.spare = evicted
			}
		} else {
			dr.spare = cand
		}
	}
	if cand, ok := dr.pos[a]; ok && int64(len(cand.witnesses)) < dr.d2 {
		cand.witnesses = append(cand.witnesses, b)
	}
}

// ProcessEdges feeds a batch of stream edges in order.  degs[i] must be
// the degree of edges[i].A including that edge, exactly as Process
// expects; both slices must have equal length.  Reservoir offers are rare
// (one per vertex lifetime), so the batch win at this layer is purely the
// amortised call dispatch from the run-major loop above.
func (dr *DegRes) ProcessEdges(edges []stream.Edge, degs []int64) {
	for i := range edges {
		dr.Process(edges[i].A, edges[i].B, degs[i])
	}
}

// expose copies a candidate's first nw witnesses into a fresh
// neighbourhood.  Every query method copies rather than aliasing live
// buffers: Process recycles evicted witness buffers in place, so an
// aliased result could be silently rewritten by later stream elements.
// The copy also makes returned neighbourhoods plain values the caller
// owns outright, whatever it does with them afterwards.
func expose(cand *candidate, nw int64) Neighbourhood {
	w := make([]int64, nw)
	copy(w, cand.witnesses)
	return Neighbourhood{A: cand.a, Witnesses: w}
}

// Result returns an arbitrary stored neighbourhood of size d2, per line 15
// of Algorithm 1, or ok = false if the run failed.
func (dr *DegRes) Result() (Neighbourhood, bool) {
	for _, cand := range dr.res.Items() {
		if int64(len(cand.witnesses)) >= dr.d2 {
			return expose(cand, dr.d2), true
		}
	}
	return Neighbourhood{}, false
}

// Results returns every stored neighbourhood of size d2 — all successes of
// this run, not just an arbitrary one.
func (dr *DegRes) Results() []Neighbourhood {
	var out []Neighbourhood
	for _, cand := range dr.res.Items() {
		if int64(len(cand.witnesses)) >= dr.d2 {
			out = append(out, expose(cand, dr.d2))
		}
	}
	return out
}

// Best returns the largest stored neighbourhood (possibly smaller than d2),
// used for diagnostics and by the Star Detection ladder.
func (dr *DegRes) Best() (Neighbourhood, bool) {
	var best *candidate
	for _, cand := range dr.res.Items() {
		if best == nil || len(cand.witnesses) > len(best.witnesses) {
			best = cand
		}
	}
	if best == nil {
		return Neighbourhood{}, false
	}
	return expose(best, int64(len(best.witnesses))), true
}

// Thresholds returns (d1, d2) for reporting.
func (dr *DegRes) Thresholds() (int64, int64) { return dr.d1, dr.d2 }

// SpaceWords counts the reservoir entries, collected witnesses, and the
// position index (vertex degrees are accounted by the shared tracker).
func (dr *DegRes) SpaceWords() int {
	words := 0
	for _, cand := range dr.res.Items() {
		words += 2 + len(cand.witnesses) // vertex id + slice header word + edges
	}
	words += 2 * len(dr.pos)
	return words
}
