package l0

import (
	"math/bits"

	"feww/internal/hashing"
	"feww/internal/xrand"
)

// Sampler is an L0 sampler over the coordinate universe [0, universe): after
// an arbitrary sequence of turnstile updates it returns a near-uniform
// sample from the non-zero coordinates of the maintained vector, or ok =
// false if the sketch fails (probability delta, controlled by the sparsity
// and row parameters) or the vector is zero.
//
// The paper invokes these samplers with failure probability delta =
// 1/(n^10 d); here delta is set through the s and rows knobs chosen by
// Params.
type Sampler struct {
	universe uint64
	levels   int
	level    []*SSparse
	lvlHash  *hashing.Poly // pairwise-independent level assignment
	minHash  *hashing.Poly // tie-break hash for uniform pick within a level
}

// Params selects the internal dimensions of a Sampler.
type Params struct {
	Sparsity int // s of the per-level s-sparse recoverer (>= 1)
	Rows     int // rows of the per-level s-sparse recoverer (>= 1)
}

// DefaultParams gives a sampler with ~2^-6 per-query failure probability,
// adequate for the experiment regime; the paper's asymptotic setting
// corresponds to Sparsity, Rows = Θ(log(n d)).
var DefaultParams = Params{Sparsity: 4, Rows: 3}

// NewSampler returns an L0 sampler over [0, universe).
func NewSampler(rng *xrand.RNG, universe uint64, p Params) *Sampler {
	if universe == 0 {
		panic("l0: NewSampler with universe == 0")
	}
	if p.Sparsity < 1 || p.Rows < 1 {
		panic("l0: NewSampler with invalid params")
	}
	levels := bits.Len64(universe) + 1
	s := &Sampler{
		universe: universe,
		levels:   levels,
		level:    make([]*SSparse, levels),
		lvlHash:  hashing.NewPoly(rng, 2),
		minHash:  hashing.NewPoly(rng, 2),
	}
	for i := range s.level {
		s.level[i] = NewSSparse(rng, p.Sparsity, p.Rows)
	}
	return s
}

// levelOf returns the deepest level that index participates in: index i is
// sketched at levels 0..levelOf(i).  Level membership halves per level, so
// level ℓ holds an expected universe/2^ℓ coordinates.
func (s *Sampler) levelOf(index uint64) int {
	h := s.lvlHash.Hash(index)
	// Number of leading "all below threshold" halvings: count how many times
	// h < p/2^j.  Equivalent to the position of the highest set bit.
	lvl := 0
	threshold := hashing.MersennePrime61 / 2
	for lvl < s.levels-1 && h < threshold {
		lvl++
		threshold /= 2
	}
	return lvl
}

// Update applies x[index] += delta for index < universe.
func (s *Sampler) Update(index uint64, delta int64) {
	if index >= s.universe {
		panic("l0: Update index out of universe")
	}
	deepest := s.levelOf(index)
	for lvl := 0; lvl <= deepest; lvl++ {
		s.level[lvl].Update(index, delta)
	}
}

// Sample returns a near-uniform non-zero coordinate of the maintained
// vector together with its count.  ok is false if the vector is zero or
// recovery failed at every level.
//
// The query walks from the deepest level upward; the first level whose
// s-sparse recovery yields a non-empty set is used, and the coordinate with
// the minimum tie-break hash is returned — this is the standard recipe
// making the output distribution (1 ± o(1))-uniform.
func (s *Sampler) Sample() (index uint64, count int64, ok bool) {
	for lvl := s.levels - 1; lvl >= 0; lvl-- {
		rec := s.level[lvl].Recover()
		if len(rec) == 0 {
			continue
		}
		best := uint64(0)
		bestHash := uint64(1) << 63
		var bestCount int64
		for idx, cnt := range rec {
			if cnt == 0 {
				continue
			}
			h := s.minHash.Hash(idx)
			if h < bestHash {
				best, bestHash, bestCount = idx, h, cnt
			}
		}
		if bestHash != uint64(1)<<63 {
			return best, bestCount, true
		}
	}
	return 0, 0, false
}

// Cells visits every 1-sparse cell of the sampler in a fixed
// (level-major, then row-major) order.  Snapshot and restore both walk
// this order, so the cell sequence of two samplers built from the same
// RNG stream lines up exactly.
func (s *Sampler) Cells(visit func(*OneSparse)) {
	for _, lv := range s.level {
		lv.Cells(visit)
	}
}

// NumCells returns how many 1-sparse cells Cells visits.
func (s *Sampler) NumCells() int {
	n := 0
	s.Cells(func(*OneSparse) { n++ })
	return n
}

// SpaceWords reports the words of state held by the sampler.
func (s *Sampler) SpaceWords() int {
	words := s.lvlHash.SpaceWords() + s.minHash.SpaceWords()
	for _, lv := range s.level {
		words += lv.SpaceWords()
	}
	return words
}
