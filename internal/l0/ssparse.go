package l0

import (
	"feww/internal/hashing"
	"feww/internal/xrand"
)

// SSparse recovers a turnstile vector with at most s non-zero coordinates.
// Coordinates are hashed into 2s OneSparse cells per row, over rows
// independent rows; a coordinate is recovered if it lands alone in some
// cell of some row, which for an s-sparse vector happens for every
// coordinate with probability >= 1 - 2^-rows.
type SSparse struct {
	s     int
	rows  int
	cells [][]*OneSparse
	hash  []*hashing.Poly
}

// NewSSparse returns an s-sparse recoverer with the given number of rows.
// rows controls the failure probability (roughly 2^-rows per coordinate).
func NewSSparse(rng *xrand.RNG, s, rows int) *SSparse {
	if s < 1 || rows < 1 {
		panic("l0: NewSSparse with s < 1 or rows < 1")
	}
	ss := &SSparse{s: s, rows: rows}
	width := 2 * s
	ss.cells = make([][]*OneSparse, rows)
	ss.hash = make([]*hashing.Poly, rows)
	for r := 0; r < rows; r++ {
		ss.cells[r] = make([]*OneSparse, width)
		for c := range ss.cells[r] {
			ss.cells[r][c] = NewOneSparse(rng)
		}
		ss.hash[r] = hashing.NewPoly(rng, 2)
	}
	return ss
}

// Update applies x[index] += delta.
func (ss *SSparse) Update(index uint64, delta int64) {
	for r := 0; r < ss.rows; r++ {
		c := ss.hash[r].HashRange(index, uint64(len(ss.cells[r])))
		ss.cells[r][c].Update(index, delta)
	}
}

// Recover returns the set of recoverable non-zero coordinates with their
// counts using a peeling decoder: singleton cells are decoded, the
// recovered coordinate is subtracted from a scratch copy of every row
// (turning colliding cells into new singletons), and the process repeats
// until no cell decodes.  For an s-sparse vector every coordinate is
// recovered with high probability; spurious decodes are filtered by the
// per-cell fingerprint, so returned entries are correct w.h.p.
func (ss *SSparse) Recover() map[uint64]int64 {
	scratch := make([][]*OneSparse, ss.rows)
	for r := range scratch {
		scratch[r] = make([]*OneSparse, len(ss.cells[r]))
		for c, cell := range ss.cells[r] {
			scratch[r][c] = cell.Clone()
		}
	}
	out := make(map[uint64]int64)
	for {
		progressed := false
		for r := 0; r < ss.rows; r++ {
			for _, cell := range scratch[r] {
				idx, cnt, ok := cell.Recover()
				if !ok {
					continue
				}
				if _, seen := out[idx]; seen {
					continue // already peeled via another row
				}
				out[idx] = cnt
				// Subtract the coordinate everywhere so collided cells can
				// become singletons in later passes.
				for r2 := 0; r2 < ss.rows; r2++ {
					c2 := ss.hash[r2].HashRange(idx, uint64(len(scratch[r2])))
					scratch[r2][c2].Update(idx, -cnt)
				}
				progressed = true
			}
		}
		if !progressed {
			return out
		}
	}
}

// Cells visits every 1-sparse cell in row-major order — the fixed
// iteration order the snapshot format relies on.
func (ss *SSparse) Cells(visit func(*OneSparse)) {
	for _, row := range ss.cells {
		for _, cell := range row {
			visit(cell)
		}
	}
}

// SpaceWords reports the words of state held by the recoverer.
func (ss *SSparse) SpaceWords() int {
	words := 0
	for r := 0; r < ss.rows; r++ {
		for _, cell := range ss.cells[r] {
			words += cell.SpaceWords()
		}
		words += ss.hash[r].SpaceWords()
	}
	return words
}
