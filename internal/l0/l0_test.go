package l0

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"feww/internal/xrand"
)

func TestOneSparseSingleton(t *testing.T) {
	o := NewOneSparse(xrand.New(1))
	o.Update(42, 3)
	idx, cnt, ok := o.Recover()
	if !ok || idx != 42 || cnt != 3 {
		t.Fatalf("Recover = (%d, %d, %v), want (42, 3, true)", idx, cnt, ok)
	}
}

func TestOneSparseEmpty(t *testing.T) {
	o := NewOneSparse(xrand.New(2))
	if _, _, ok := o.Recover(); ok {
		t.Fatal("empty sketch recovered something")
	}
	if !o.Zero() {
		t.Fatal("empty sketch not Zero")
	}
}

func TestOneSparseCancellation(t *testing.T) {
	o := NewOneSparse(xrand.New(3))
	o.Update(7, 2)
	o.Update(9, 5)
	o.Update(7, -2)
	o.Update(9, -5)
	if !o.Zero() {
		t.Fatal("fully cancelled sketch not Zero")
	}
	o.Update(11, 1)
	idx, cnt, ok := o.Recover()
	if !ok || idx != 11 || cnt != 1 {
		t.Fatalf("post-cancellation Recover = (%d, %d, %v)", idx, cnt, ok)
	}
}

func TestOneSparseRejectsMultiple(t *testing.T) {
	rng := xrand.New(4)
	rejected := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		o := NewOneSparse(rng.Split())
		o.Update(uint64(2*i), 1)
		o.Update(uint64(2*i+1), 1)
		if _, _, ok := o.Recover(); !ok {
			rejected++
		}
	}
	if rejected < trials-2 {
		t.Fatalf("2-sparse vectors accepted as singletons: %d/%d rejected", rejected, trials)
	}
}

func TestOneSparseQuickSingletons(t *testing.T) {
	rng := xrand.New(5)
	f := func(idxRaw uint32, cntRaw int16) bool {
		if cntRaw == 0 {
			cntRaw = 1
		}
		o := NewOneSparse(rng.Split())
		o.Update(uint64(idxRaw), int64(cntRaw))
		idx, cnt, ok := o.Recover()
		return ok && idx == uint64(idxRaw) && cnt == int64(cntRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSSparseRecoversSparseVectors(t *testing.T) {
	rng := xrand.New(6)
	f := func(seeds [6]uint32) bool {
		want := make(map[uint64]int64)
		for i, s := range seeds {
			idx := uint64(s)%10000 + uint64(i)*10000 // distinct indices
			cnt := int64(s%5) + 1
			want[idx] = cnt
		}
		// Recovery is a w.h.p. guarantee: the random bucket hashes can be
		// unlucky for a vector at exactly the sparsity limit.  Allow a few
		// independently-hashed structures per input; fabrication, however,
		// is never allowed on any attempt.
		for attempt := 0; attempt < 3; attempt++ {
			ss := NewSSparse(rng.Split(), 6, 4)
			for idx, cnt := range want {
				ss.Update(idx, cnt)
			}
			got := ss.Recover()
			for idx := range got {
				if _, ok := want[idx]; !ok {
					return false // fabricated coordinate: hard failure
				}
			}
			complete := true
			for idx, cnt := range want {
				if got[idx] != cnt {
					complete = false
					break
				}
			}
			if complete {
				return true
			}
		}
		return false
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSSparseWithDeletionsToSparse(t *testing.T) {
	rng := xrand.New(7)
	ss := NewSSparse(rng, 4, 4)
	// Insert 200 coordinates (way over sparsity), then delete all but 3.
	for i := uint64(0); i < 200; i++ {
		ss.Update(i, 1)
	}
	for i := uint64(0); i < 197; i++ {
		ss.Update(i, -1)
	}
	got := ss.Recover()
	for i := uint64(197); i < 200; i++ {
		if got[i] != 1 {
			t.Fatalf("coordinate %d not recovered: %v", i, got)
		}
	}
	for idx := range got {
		if idx < 197 {
			t.Fatalf("deleted coordinate %d recovered", idx)
		}
	}
}

func TestSamplerReturnsLiveCoordinate(t *testing.T) {
	rng := xrand.New(8)
	s := NewSampler(rng, 1<<20, DefaultParams)
	live := map[uint64]bool{3: true, 77777: true, 1 << 19: true}
	for idx := range live {
		s.Update(idx, 1)
	}
	idx, cnt, ok := s.Sample()
	if !ok {
		t.Fatal("sampler failed on a 3-sparse vector")
	}
	if !live[idx] || cnt != 1 {
		t.Fatalf("sampled dead coordinate (%d, %d)", idx, cnt)
	}
}

func TestSamplerZeroVector(t *testing.T) {
	rng := xrand.New(9)
	s := NewSampler(rng, 1024, DefaultParams)
	if _, _, ok := s.Sample(); ok {
		t.Fatal("sampler produced a coordinate from the zero vector")
	}
	// Insert then fully delete.
	for i := uint64(0); i < 100; i++ {
		s.Update(i, 1)
	}
	for i := uint64(0); i < 100; i++ {
		s.Update(i, -1)
	}
	if idx, cnt, ok := s.Sample(); ok {
		t.Fatalf("sampler produced (%d, %d) from a cancelled vector", idx, cnt)
	}
}

func TestSamplerSurvivesChurn(t *testing.T) {
	rng := xrand.New(10)
	s := NewSampler(rng, 1<<16, DefaultParams)
	// Heavy churn: 2000 inserts, 1990 deletes, 10 survivors.
	for i := uint64(0); i < 2000; i++ {
		s.Update(i, 1)
	}
	for i := uint64(0); i < 1990; i++ {
		s.Update(i, -1)
	}
	idx, cnt, ok := s.Sample()
	if !ok {
		t.Fatal("sampler failed after churn")
	}
	if idx < 1990 || idx >= 2000 || cnt != 1 {
		t.Fatalf("sampled (%d, %d), want a survivor in [1990, 2000)", idx, cnt)
	}
}

// TestSamplerNearUniform draws many independent samplers over a fixed
// small support and chi-square-tests the sampled distribution.
func TestSamplerNearUniform(t *testing.T) {
	rng := xrand.New(11)
	const support = 8
	const trials = 3000
	counts := make([]int, support)
	fails := 0
	for trial := 0; trial < trials; trial++ {
		s := NewSampler(rng.Split(), 1<<12, DefaultParams)
		for i := uint64(0); i < support; i++ {
			s.Update(i*37+5, 1) // spread the support around the universe
		}
		idx, _, ok := s.Sample()
		if !ok {
			fails++
			continue
		}
		counts[(idx-5)/37]++
	}
	if fails > trials/20 {
		t.Fatalf("sampler failure rate too high: %d/%d", fails, trials)
	}
	good := trials - fails
	want := float64(good) / support
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - want
		chi2 += d * d / want
	}
	// 7 degrees of freedom; 99.9th percentile is ~24.3.  Allow extra slack
	// for the min-hash tie-breaking's small bias.
	if chi2 > 35 {
		t.Fatalf("sampler far from uniform: chi2 = %.1f, counts = %v", chi2, counts)
	}
	_ = math.Sqrt // keep math imported for future tolerance tweaks
}

func TestSamplerPanicsOutOfUniverse(t *testing.T) {
	rng := xrand.New(12)
	s := NewSampler(rng, 100, DefaultParams)
	defer func() {
		if recover() == nil {
			t.Error("Update out of universe did not panic")
		}
	}()
	s.Update(100, 1)
}

func TestSpaceWordsPositive(t *testing.T) {
	rng := xrand.New(13)
	s := NewSampler(rng, 1<<10, DefaultParams)
	if s.SpaceWords() <= 0 {
		t.Fatal("SpaceWords not positive")
	}
	ss := NewSSparse(rng, 2, 2)
	if ss.SpaceWords() <= 0 {
		t.Fatal("SSparse SpaceWords not positive")
	}
	o := NewOneSparse(rng)
	if o.SpaceWords() <= 0 {
		t.Fatal("OneSparse SpaceWords not positive")
	}
}
