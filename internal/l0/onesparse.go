// Package l0 implements L0 sampling for turnstile (insertion-deletion)
// streams in the style of Jowhari, Sağlam and Tardos [26], the substrate of
// the paper's insertion-deletion algorithm (§5): an L0 sampler processes a
// stream of coordinate updates to a vector x and, at query time, outputs a
// (near-)uniform sample from the non-zero coordinates of x.
//
// The construction is the classic three-layer one:
//
//  1. OneSparse — exact recovery of a vector with at most one non-zero
//     coordinate via (count, index-weighted sum, polynomial fingerprint);
//  2. SSparse — recovery of vectors with at most s non-zero coordinates by
//     hashing coordinates into O(s) OneSparse cells across O(log 1/δ) rows;
//  3. Sampler — geometric subsampling levels; level ℓ sketches the
//     coordinates whose pairwise-independent hash falls below 2^61/2^ℓ, and
//     the query returns the minimum-hash coordinate of the deepest
//     recoverable level.
package l0

import (
	"feww/internal/hashing"
	"feww/internal/xrand"
)

// OneSparse exactly recovers a turnstile vector that has at most one
// non-zero coordinate, and detects (with high probability) when it has
// more.  Coordinates are uint64 indices; counts are signed.
type OneSparse struct {
	count int64 // sum of deltas (ℓ in the literature)
	sum   int64 // sum of delta * index — safe for index*|count| < 2^63
	fp    *hashing.Fingerprint
}

// NewOneSparse returns an empty 1-sparse recoverer.
func NewOneSparse(rng *xrand.RNG) *OneSparse {
	return &OneSparse{fp: hashing.NewFingerprint(rng)}
}

// Update applies x[index] += delta.
func (o *OneSparse) Update(index uint64, delta int64) {
	o.count += delta
	o.sum += delta * int64(index)
	o.fp.Update(index, delta)
}

// Recover attempts to decode the sketched vector as a single non-zero
// coordinate.  ok is true only when the vector is exactly {index: count}
// (up to the fingerprint's false-positive probability <= U/p).
func (o *OneSparse) Recover() (index uint64, count int64, ok bool) {
	if o.count == 0 {
		return 0, 0, false
	}
	if o.sum%o.count != 0 {
		return 0, 0, false
	}
	idx := o.sum / o.count
	if idx < 0 {
		return 0, 0, false
	}
	if !o.fp.Matches(uint64(idx), o.count) {
		return 0, 0, false
	}
	return uint64(idx), o.count, true
}

// Zero reports whether the sketch is consistent with the all-zero vector.
func (o *OneSparse) Zero() bool {
	return o.count == 0 && o.sum == 0 && o.fp.Zero()
}

// Clone returns an independent copy, used by the SSparse peeling decoder.
func (o *OneSparse) Clone() *OneSparse {
	return &OneSparse{count: o.count, sum: o.sum, fp: o.fp.Clone()}
}

// State returns the cell's mutable state: the delta sum, the index-weighted
// sum, and the fingerprint accumulator.  The fingerprint's evaluation point
// is not part of the state — it is derived from the construction RNG, so a
// checkpoint needs only these three words per cell.
func (o *OneSparse) State() (count, sum int64, acc uint64) {
	return o.count, o.sum, o.fp.Acc()
}

// SetState overwrites the cell's mutable state; used by snapshot restore on
// a freshly constructed (hence hash-compatible) cell.
func (o *OneSparse) SetState(count, sum int64, acc uint64) {
	o.count, o.sum = count, sum
	o.fp.SetAcc(acc)
}

// SpaceWords reports the words of state held by the recoverer.
func (o *OneSparse) SpaceWords() int { return 2 + o.fp.SpaceWords() }
