// Package xrand provides a deterministic, splittable pseudo-random number
// generator used by every randomised component in this repository.
//
// All algorithms in the paper are randomised (reservoir sampling, L0
// sampling, random permutations in the communication reductions).  To make
// every experiment row reproducible from a single seed, components never use
// the global math/rand state; they take an *xrand.RNG, and parents derive
// statistically independent children via Split.
//
// The core generator is xoshiro256**, seeded through splitmix64.  It
// implements math/rand.Source64 so it can back stdlib distributions.
package xrand

import (
	"math"
	"math/bits"
)

// RNG is a deterministic pseudo-random generator.  It is NOT safe for
// concurrent use; derive per-goroutine children with Split.
type RNG struct {
	s [4]uint64
}

// New returns an RNG seeded from seed via splitmix64, per the xoshiro
// authors' recommendation.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a child generator whose stream is independent of the
// parent's subsequent output.  The parent advances by one step.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// State returns the generator's full internal state, for checkpointing.
// Restoring it with SetState resumes the exact same random stream.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the internal state with a value previously returned
// by State.  An all-zero state is invalid for xoshiro and is rejected by
// re-seeding from a fixed constant.
func (r *RNG) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 0x9e3779b97f4a7c15
	}
	r.s = s
}

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	res := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return res
}

// Int63 returns a non-negative random int64 (math/rand.Source compatible).
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Seed is a no-op; it exists so *RNG satisfies math/rand.Source.  Use New.
func (r *RNG) Seed(uint64) {}

// Uint64n returns a uniform value in [0, n).  n must be > 0.
// Uses Lemire's nearly-divisionless unbiased method.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n).  n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int64n returns a uniform value in [0, n).  n must be > 0.
func (r *RNG) Int64n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int64n with n <= 0")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Coin returns true with probability p.  This is the Coin(p) primitive that
// Algorithm 1 in the paper assumes.  Values p <= 0 always return false and
// p >= 1 always return true.
func (r *RNG) Coin(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniform random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomises the order of n elements using the provided swap
// function (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Subset returns a uniform random k-subset of [0, n), sorted ascending.
// It uses Floyd's algorithm: O(k) expected work, no O(n) allocation.
func (r *RNG) Subset(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: Subset with k out of range")
	}
	chosen := make(map[int]struct{}, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
	}
	out := make([]int, 0, k)
	for v := range chosen {
		out = append(out, v)
	}
	// Insertion sort: k is typically small; avoids importing sort here.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials, i.e. a Geometric(p) variate on {0, 1, 2, ...}.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric with p out of (0, 1]")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Zipf samples from a Zipf distribution on {0, ..., n-1} with exponent
// s > 1, i.e. P(X = i) proportional to 1/(i+1)^s, using a precomputed CDF.
// Construction is O(n); sampling is O(log n).
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n items with exponent s.
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next returns the next Zipf variate in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
