package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child and parent streams should not be identical.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("child mirrors parent: %d/100 equal outputs", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniform(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestCoinEdgeCases(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Coin(0) {
			t.Fatal("Coin(0) returned true")
		}
		if !r.Coin(1) {
			t.Fatal("Coin(1) returned false")
		}
		if r.Coin(-0.5) {
			t.Fatal("Coin(-0.5) returned true")
		}
		if !r.Coin(1.5) {
			t.Fatal("Coin(1.5) returned false")
		}
	}
}

func TestCoinBias(t *testing.T) {
	r := New(9)
	const trials = 200000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < trials; i++ {
			if r.Coin(p) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Coin(%.1f): observed rate %.4f", p, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(17)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Perm first element %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestSubsetProperties(t *testing.T) {
	r := New(19)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%60) + 1
		k := int(kRaw) % (n + 1)
		s := r.Subset(n, k)
		if len(s) != k {
			return false
		}
		for i, v := range s {
			if v < 0 || v >= n {
				return false
			}
			if i > 0 && s[i-1] >= v { // sorted, distinct
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetUniformMembership(t *testing.T) {
	r := New(23)
	const n, k, trials = 10, 3, 60000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range r.Subset(n, k) {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d membership: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestSubsetFullAndEmpty(t *testing.T) {
	r := New(29)
	if got := r.Subset(5, 0); len(got) != 0 {
		t.Fatalf("Subset(5, 0) = %v", got)
	}
	full := r.Subset(5, 5)
	for i, v := range full {
		if v != i {
			t.Fatalf("Subset(5, 5) = %v, want identity", full)
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(31)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("Shuffle changed contents: %v", xs)
	}
}

func TestZipfRangeAndMonotone(t *testing.T) {
	r := New(37)
	z := NewZipf(r, 1.5, 20)
	counts := make([]int, 20)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 0 || v >= 20 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 should dominate rank 5, which should dominate rank 19.
	if !(counts[0] > counts[5] && counts[5] > counts[19]) {
		t.Fatalf("Zipf counts not decreasing: %v", counts)
	}
	// Check the head frequency against the exact probability.
	total := 0.0
	for i := 1; i <= 20; i++ {
		total += 1 / math.Pow(float64(i), 1.5)
	}
	want := 100000 / total
	if math.Abs(float64(counts[0])-want) > 6*math.Sqrt(want) {
		t.Errorf("Zipf head count %d, want ~%.0f", counts[0], want)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(41)
	const p, trials = 0.25, 100000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / trials
	want := (1 - p) / p // mean of failures-before-success
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("Geometric(%.2f) mean %.3f, want %.3f", p, mean, want)
	}
	if r.Geometric(1) != 0 {
		t.Error("Geometric(1) should be 0")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(43)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestPanics(t *testing.T) {
	r := New(47)
	assertPanics(t, "Intn(0)", func() { r.Intn(0) })
	assertPanics(t, "Int64n(-1)", func() { r.Int64n(-1) })
	assertPanics(t, "Uint64n(0)", func() { r.Uint64n(0) })
	assertPanics(t, "Subset k>n", func() { r.Subset(3, 4) })
	assertPanics(t, "Geometric(0)", func() { r.Geometric(0) })
	assertPanics(t, "NewZipf n=0", func() { NewZipf(r, 1.5, 0) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}
