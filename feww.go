package feww

import (
	"io"

	"feww/internal/core"
	"feww/internal/stream"
)

// Edge is one element of an insertion-only stream: item A in [0, N) arrived
// with witness B.  It aliases the internal stream model so batch slices move
// through every layer without conversion.
type Edge = stream.Edge

// Update is one element of a turnstile stream: an Edge plus its sign
// (Insert or Delete).
type Update = stream.Update

// Insert and Delete are the signs of a turnstile Update.
const (
	Insert = stream.Insert
	Delete = stream.Delete
)

// Neighbourhood is an algorithm's output: a frequent A-vertex together
// with distinct witnesses (B-neighbours) proving its degree.
type Neighbourhood = core.Neighbourhood

// ErrNoWitness is returned when no neighbourhood of the required size was
// found: either the input violated the degree-d promise, or the algorithm's
// random choices failed (probability <= 1/n under the promise).  Witnesses
// are never fabricated — every reported edge was seen in the stream.
var ErrNoWitness = core.ErrNoWitness

// Config parameterises the insertion-only algorithm.
type Config struct {
	// N is the number of possible items (|A| in the paper).
	N int64
	// D is the frequency/degree threshold: the promise is that some item
	// appears at least D times.
	D int64
	// Alpha is the integral approximation factor (>= 1): the output carries
	// at least ceil(D/Alpha) witnesses.  Space decreases steeply in Alpha
	// (the n^(1/Alpha) term of Theorem 3.2); Alpha = 1 stores all items.
	Alpha int
	// Seed makes the run reproducible; distinct seeds give independent runs.
	Seed uint64
	// ScaleFactor (default 1.0) multiplies the theoretical reservoir size;
	// values below 1 trade the w.h.p. guarantee for space.  Leave zero
	// unless you are running ablations.
	ScaleFactor float64
}

// InsertOnly is the insertion-only FEwW algorithm (paper Algorithm 2,
// Theorem 3.2).  It is not safe for concurrent use.
type InsertOnly struct {
	inner *core.InsertOnly
}

// NewInsertOnly constructs the algorithm for the given configuration.
func NewInsertOnly(cfg Config) (*InsertOnly, error) {
	inner, err := core.NewInsertOnly(core.InsertOnlyConfig{
		N: cfg.N, D: cfg.D, Alpha: cfg.Alpha, Seed: cfg.Seed, ScaleFactor: cfg.ScaleFactor,
	})
	if err != nil {
		return nil, err
	}
	return &InsertOnly{inner: inner}, nil
}

// ProcessEdge feeds one occurrence: item a in [0, N) arrived with witness
// b (a timestamp, source address, user id, ... — any satellite datum
// encoded as an integer).
func (io *InsertOnly) ProcessEdge(a, b int64) { io.inner.ProcessEdge(a, b) }

// ProcessEdges feeds a batch of occurrences in order.  It is equivalent to
// calling ProcessEdge per element but amortises the per-edge dispatch; the
// sharded Engine uses it as its shard hand-off unit.
func (io *InsertOnly) ProcessEdges(edges []Edge) { io.inner.ProcessEdges(edges) }

// Result returns a frequent item with at least ceil(D/Alpha) witnesses, or
// ErrNoWitness.  It may be called at any point during the stream.
func (io *InsertOnly) Result() (Neighbourhood, error) { return io.inner.Result() }

// Results returns every distinct frequent element found, each with a full
// ceil(D/Alpha)-witness neighbourhood, sorted by item id.  Useful when
// several items exceed the threshold at once (e.g. multiple concurrent
// attacks); empty exactly when Result returns ErrNoWitness.
func (io *InsertOnly) Results() []Neighbourhood { return io.inner.Results() }

// Best returns the largest neighbourhood collected so far even if it is
// below the ceil(D/Alpha) target; found is false only if nothing was
// collected at all.
func (io *InsertOnly) Best() (nb Neighbourhood, found bool) { return io.inner.Best() }

// WitnessTarget returns ceil(D/Alpha), the guaranteed output size.
func (io *InsertOnly) WitnessTarget() int64 { return io.inner.WitnessTarget() }

// SpaceWords reports the live state in machine words — the quantity the
// paper's space bounds are stated in.
func (io *InsertOnly) SpaceWords() int { return io.inner.SpaceWords() }

// Snapshot serialises the algorithm's complete state (degree table,
// reservoirs, witnesses, RNG streams) to w.  Restoring with
// RestoreInsertOnly and feeding the same stream suffix reproduces the
// uninterrupted run exactly.  This is also the "message" of the paper's
// communication protocols: party i snapshots, party i+1 restores.
func (io *InsertOnly) Snapshot(w io.Writer) error { return io.inner.Snapshot(w) }

// SnapshotSize returns the exact byte length Snapshot would write.
func (io *InsertOnly) SnapshotSize() int { return io.inner.SnapshotSize() }

// RestoreInsertOnly reconstructs an InsertOnly from a Snapshot.
func RestoreInsertOnly(r io.Reader) (*InsertOnly, error) {
	inner, err := core.RestoreInsertOnly(r)
	if err != nil {
		return nil, err
	}
	return &InsertOnly{inner: inner}, nil
}

// ErrBadSnapshot is returned by RestoreInsertOnly on corrupt or
// incompatible input.
var ErrBadSnapshot = core.ErrBadSnapshot

// TurnstileConfig parameterises the insertion-deletion algorithm.
type TurnstileConfig struct {
	// N is the number of possible items (|A|).
	N int64
	// M is the size of the witness universe (|B|).
	M int64
	// D is the degree threshold.
	D int64
	// Alpha is the approximation factor (>= 1).
	Alpha int
	// Seed makes the run reproducible.
	Seed uint64
	// ScaleFactor (default 1.0) multiplies the theoretical L0-sampler
	// counts.  The paper's constants are large; laptop-scale runs typically
	// use 0.01-0.1.  See docs/EXPERIMENTS.md.
	ScaleFactor float64
	// MaxSamplers caps total sampler allocation (default 1 << 20); the
	// constructor fails rather than over-allocating.
	MaxSamplers int
}

// InsertDelete is the insertion-deletion FEwW algorithm (paper Algorithm 3,
// Theorem 5.4).  It is not safe for concurrent use.
type InsertDelete struct {
	inner *core.InsertDelete
}

// NewInsertDelete constructs the algorithm; all samplers are allocated up
// front (the sampled vertex set must be fixed before the stream).
func NewInsertDelete(cfg TurnstileConfig) (*InsertDelete, error) {
	inner, err := core.NewInsertDelete(core.InsertDeleteConfig{
		N: cfg.N, M: cfg.M, D: cfg.D, Alpha: cfg.Alpha, Seed: cfg.Seed,
		ScaleFactor: cfg.ScaleFactor, MaxSamplers: cfg.MaxSamplers,
	})
	if err != nil {
		return nil, err
	}
	return &InsertDelete{inner: inner}, nil
}

// Insert feeds the insertion of edge (a, b).
func (id *InsertDelete) Insert(a, b int64) { id.inner.Update(a, b, 1) }

// Delete feeds the deletion of edge (a, b); the edge must currently exist
// (simple-graph turnstile promise).
func (id *InsertDelete) Delete(a, b int64) { id.inner.Update(a, b, -1) }

// ProcessUpdates feeds a batch of signed updates in order; it is equivalent
// to calling Insert/Delete per element.
func (id *InsertDelete) ProcessUpdates(ups []Update) { id.inner.ApplyUpdates(ups) }

// Result returns a frequent item of the final graph with at least
// ceil(D/Alpha) live witnesses, or ErrNoWitness.
func (id *InsertDelete) Result() (Neighbourhood, error) { return id.inner.Result() }

// WitnessTarget returns ceil(D/Alpha).
func (id *InsertDelete) WitnessTarget() int64 { return id.inner.WitnessTarget() }

// SpaceWords reports the live state in machine words.
func (id *InsertDelete) SpaceWords() int { return id.inner.SpaceWords() }
