package feww

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"feww/internal/stream"
	"feww/internal/workload"
	"feww/internal/xrand"
)

// engineStream builds a deterministic insert-only stream with the given
// heavy items, each receiving degree distinct witnesses, drowned in light
// noise traffic, and returns the stream plus the true edge set.
func engineStream(heavy []int64, degree int64, n int64) ([]Edge, map[Edge]bool) {
	truth := make(map[Edge]bool)
	var edges []Edge
	for j := int64(0); j < degree; j++ {
		for _, a := range heavy {
			edges = append(edges, Edge{A: a, B: a*100000 + j})
		}
		// Noise: a rotating band of light items, 3 occurrences each overall.
		if j < 3 {
			for a := n / 2; a < n/2+200; a++ {
				edges = append(edges, Edge{A: a, B: j})
			}
		}
	}
	for _, e := range edges {
		truth[e] = true
	}
	return edges, truth
}

// TestEngineResultsAcrossShards plants simultaneously-frequent items that
// land in different shards (items 0..3 with 4 shards hit residues 0..3)
// and checks every one is reported with a full, genuine witness set: shard
// merging must neither drop a shard's findings nor fabricate witnesses.
func TestEngineResultsAcrossShards(t *testing.T) {
	const (
		n      = 1000
		d      = 64
		shards = 4
	)
	heavy := []int64{0, 1, 2, 3, 17, 42, 999}
	edges, truth := engineStream(heavy, d, n)

	eng, err := NewEngine(EngineConfig{
		Config: Config{N: n, D: d, Alpha: 2, Seed: 7},
		Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", eng.Shards(), shards)
	}
	eng.ProcessEdges(edges)
	eng.Drain() // make every fed edge visible to the published query path

	results := eng.Results()
	byItem := make(map[int64]Neighbourhood)
	for _, nb := range results {
		byItem[nb.A] = nb
	}
	for _, a := range heavy {
		nb, ok := byItem[a]
		if !ok {
			t.Fatalf("heavy item %d missing from Results() = %v", a, results)
		}
		if int64(nb.Size()) < eng.WitnessTarget() {
			t.Errorf("item %d reported with %d witnesses, want >= %d", a, nb.Size(), eng.WitnessTarget())
		}
	}
	// No fabricated items or witnesses anywhere in the merged output.
	for _, nb := range results {
		seen := make(map[int64]bool)
		for _, w := range nb.Witnesses {
			if !truth[Edge{A: nb.A, B: w}] {
				t.Fatalf("fabricated witness: edge (%d, %d) never appeared in the stream", nb.A, w)
			}
			if seen[w] {
				t.Fatalf("duplicate witness %d for item %d", w, nb.A)
			}
			seen[w] = true
		}
	}
	// Results is sorted by global item id.
	for i := 1; i < len(results); i++ {
		if results[i-1].A >= results[i].A {
			t.Fatalf("Results not sorted: %v", results)
		}
	}

	if got := eng.EdgesProcessed(); got != int64(len(edges)) {
		t.Fatalf("EdgesProcessed = %d, want %d", got, len(edges))
	}
	if sw := eng.SpaceWords(); sw <= 0 {
		t.Fatalf("SpaceWords = %d, want > 0", sw)
	}
}

// TestEngineDeterminism is the acceptance check for the concurrent path: a
// fixed seed must give byte-identical Results across executions, shard
// scheduling, batch sizes, and per-edge vs batched feeding.
func TestEngineDeterminism(t *testing.T) {
	inst, err := workload.NewPlanted(workload.PlantedConfig{
		N: 20000, M: 80000, Heavy: 5, HeavyDeg: 600,
		NoiseEdges: 20000, Order: workload.Shuffled, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	edges := make([]Edge, len(inst.Updates))
	for i, u := range inst.Updates {
		edges[i] = u.Edge
	}

	run := func(batchSize int, perEdge bool) []Neighbourhood {
		eng, err := NewEngine(EngineConfig{
			Config:    Config{N: 20000, D: 600, Alpha: 2, Seed: 11},
			Shards:    4,
			BatchSize: batchSize,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		if perEdge {
			for _, e := range edges {
				eng.ProcessEdge(e.A, e.B)
			}
		} else {
			eng.ProcessEdges(edges)
		}
		eng.Drain()
		return eng.Results()
	}

	base := run(0, false)
	if len(base) == 0 {
		t.Fatal("no results on a satisfied promise")
	}
	for name, got := range map[string][]Neighbourhood{
		"rerun":        run(0, false),
		"batchSize=1":  run(1, false),
		"batchSize=33": run(33, false),
		"per-edge":     run(0, true),
	} {
		if !reflect.DeepEqual(base, got) {
			t.Errorf("%s diverged:\nbase: %v\ngot:  %v", name, base, got)
		}
	}
}

// TestEngineMidStreamQueries exercises the strict barrier path: Fresh
// queries during the stream must reflect everything fed so far and must
// not disturb ingest.
func TestEngineMidStreamQueries(t *testing.T) {
	const n, d = 500, 40
	edges, truth := engineStream([]int64{5, 6}, d, n)

	eng, err := NewEngine(EngineConfig{
		Config: Config{N: n, D: d, Alpha: 2, Seed: 1},
		Shards: 3, BatchSize: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	half := len(edges) / 2
	eng.ProcessEdges(edges[:half])
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := eng.EdgesProcessed(); got != int64(half) {
		t.Fatalf("EdgesProcessed mid-stream = %d, want %d", got, half)
	}
	eng.ProcessEdges(edges[half:])

	nb, err := eng.ResultFresh()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range nb.Witnesses {
		if !truth[Edge{A: nb.A, B: w}] {
			t.Fatalf("fabricated witness (%d, %d)", nb.A, w)
		}
	}
	best, found := eng.BestFresh()
	if !found || best.Size() < nb.Size() {
		t.Fatalf("BestFresh() = %v, %v; want a neighbourhood at least as large as ResultFresh's", best, found)
	}

	// Close is idempotent and the engine stays queryable afterwards, on
	// both consistencies: the final published epoch is the full stream.
	eng.Close()
	eng.Close()
	if got := eng.EdgesProcessed(); got != int64(len(edges)) {
		t.Fatalf("EdgesProcessed after Close = %d, want %d", got, len(edges))
	}
	if _, err := eng.Result(); err != nil {
		t.Fatalf("Result after Close: %v", err)
	}
	if _, err := eng.ResultFresh(); err != nil {
		t.Fatalf("ResultFresh after Close: %v", err)
	}
	// Feeding after Close is a clean error, not a panic: a server can turn
	// an ingest racing shutdown into a 503.
	if err := eng.ProcessEdge(1, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("ProcessEdge after Close = %v, want ErrClosed", err)
	}
	if err := eng.ProcessEdges(edges[:1]); !errors.Is(err, ErrClosed) {
		t.Fatalf("ProcessEdges after Close = %v, want ErrClosed", err)
	}
	if err := eng.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close = %v, want ErrClosed", err)
	}
	if err := eng.Drain(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Drain after Close = %v, want ErrClosed", err)
	}
}

func TestEngineConfigValidation(t *testing.T) {
	if _, err := NewEngine(EngineConfig{Config: Config{N: 0, D: 1, Alpha: 1}}); err == nil {
		t.Error("N = 0 accepted")
	}
	if _, err := NewEngine(EngineConfig{Config: Config{N: 10, D: 0, Alpha: 1}}); err == nil {
		t.Error("D = 0 accepted")
	}
	// More shards than items: clamped to N, not rejected.
	eng, err := NewEngine(EngineConfig{Config: Config{N: 3, D: 2, Alpha: 1, Seed: 1}, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Shards() != 3 {
		t.Errorf("Shards clamped to %d, want 3", eng.Shards())
	}
	eng.ProcessEdge(0, 1)
	eng.ProcessEdge(0, 2)
	eng.Drain()
	if nb, err := eng.Result(); err != nil || nb.A != 0 {
		t.Errorf("Result = %v, %v; want item 0", nb, err)
	}
}

// TestProcessEdgesMatchesProcessEdge verifies the batched public path is
// state-identical to the per-edge path, snapshot bytes included — the
// strongest equivalence the library can express (degree table, reservoirs,
// witnesses, and RNG streams all match).
func TestProcessEdgesMatchesProcessEdge(t *testing.T) {
	inst, err := workload.NewPlanted(workload.PlantedConfig{
		N: 3000, M: 12000, Heavy: 2, HeavyDeg: 200,
		NoiseEdges: 6000, Order: workload.Interleaved, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	edges := make([]Edge, len(inst.Updates))
	for i, u := range inst.Updates {
		edges[i] = u.Edge
	}

	cfg := Config{N: 3000, D: 200, Alpha: 3, Seed: 9}
	perEdge, err := NewInsertOnly(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		perEdge.ProcessEdge(e.A, e.B)
	}

	batched, err := NewInsertOnly(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Uneven chunks, including empty and single-element ones.
	rng := xrand.New(1)
	for off := 0; off < len(edges); {
		chunk := rng.Intn(97)
		if off+chunk > len(edges) {
			chunk = len(edges) - off
		}
		batched.ProcessEdges(edges[off : off+chunk])
		off += chunk
	}

	var a, b bytes.Buffer
	if err := perEdge.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := batched.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("per-edge and batched ingest diverged: snapshots differ (%d vs %d bytes)",
			a.Len(), b.Len())
	}
	if !reflect.DeepEqual(perEdge.Results(), batched.Results()) {
		t.Fatal("per-edge and batched ingest produced different Results")
	}
}

// TestTurnstileEngine runs the sharded insertion-deletion engine on a
// small turnstile stream: noise edges are inserted and later deleted, so
// only the planted heavy items survive to the final graph.
func TestTurnstileEngine(t *testing.T) {
	const (
		n, m = 128, 1024
		d    = 16
	)
	heavy := []int64{3, 10}
	var ups []Update
	live := make(map[Edge]bool)
	for j := int64(0); j < d; j++ {
		for _, a := range heavy {
			ups = append(ups, Update{Edge: Edge{A: a, B: a*16 + j}, Op: stream.Insert})
			live[Edge{A: a, B: a*16 + j}] = true
		}
	}
	// Transient noise: inserted, then fully deleted.
	for a := int64(100); a < 110; a++ {
		for j := int64(0); j < 4; j++ {
			ups = append(ups, Update{Edge: Edge{A: a, B: j}, Op: stream.Insert})
		}
	}
	for a := int64(100); a < 110; a++ {
		for j := int64(0); j < 4; j++ {
			ups = append(ups, Update{Edge: Edge{A: a, B: j}, Op: stream.Delete})
		}
	}

	eng, err := NewTurnstileEngine(TurnstileEngineConfig{
		TurnstileConfig: TurnstileConfig{N: n, M: m, D: d, Alpha: 2, Seed: 2, ScaleFactor: 0.05},
		Shards:          4,
		BatchSize:       16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.ProcessUpdates(ups[:len(ups)/2])
	for _, u := range ups[len(ups)/2:] {
		if u.Op == stream.Insert {
			eng.Insert(u.A, u.B)
		} else {
			eng.Delete(u.A, u.B)
		}
	}
	eng.Drain()

	nb, err := eng.Result()
	if err != nil {
		t.Fatalf("no result on a satisfied promise: %v", err)
	}
	if nb.A != heavy[0] && nb.A != heavy[1] {
		t.Fatalf("reported item %d is not a planted heavy item", nb.A)
	}
	if int64(nb.Size()) < eng.WitnessTarget() {
		t.Fatalf("%d witnesses, want >= %d", nb.Size(), eng.WitnessTarget())
	}
	for _, w := range nb.Witnesses {
		if !live[Edge{A: nb.A, B: w}] {
			t.Fatalf("witness (%d, %d) is not a live edge of the final graph", nb.A, w)
		}
	}
	if got := eng.UpdatesProcessed(); got != int64(len(ups)) {
		t.Fatalf("UpdatesProcessed = %d, want %d", got, len(ups))
	}
	if eng.SpaceWords() <= 0 {
		t.Fatal("SpaceWords must be positive")
	}
}

// TestTurnstileEngineDeterminism mirrors the insert-only determinism check.
func TestTurnstileEngineDeterminism(t *testing.T) {
	rng := xrand.New(6)
	var ups []Update
	for j := int64(0); j < 16; j++ {
		ups = append(ups, Update{Edge: Edge{A: 7, B: j}, Op: stream.Insert})
	}
	// Distinct B per update keeps every edge unique (simple-graph promise).
	for i := int64(0); i < 150; i++ {
		ups = append(ups, Update{Edge: Edge{A: rng.Int64n(64), B: 100 + i}, Op: stream.Insert})
	}

	run := func(batchSize int) string {
		eng, err := NewTurnstileEngine(TurnstileEngineConfig{
			TurnstileConfig: TurnstileConfig{N: 64, M: 256, D: 16, Alpha: 2, Seed: 4, ScaleFactor: 0.05},
			Shards:          4,
			BatchSize:       batchSize,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		eng.ProcessUpdates(ups)
		eng.Drain()
		nb, err := eng.Result()
		return fmt.Sprintf("%v %v", nb, err)
	}

	base := run(0)
	for _, bs := range []int{1, 4096} {
		if got := run(bs); got != base {
			t.Fatalf("batchSize=%d diverged: %q vs %q", bs, got, base)
		}
	}
}
