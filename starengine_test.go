package feww

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// undirectedStar returns the double-cover half-edges of a star: center c
// connected to neighbours ns, both orientations per edge.
func undirectedStar(c int64, ns []int64) []Edge {
	var out []Edge
	for _, v := range ns {
		out = append(out, Edge{A: c, B: v}, Edge{A: v, B: c})
	}
	return out
}

// seqRange returns [lo, lo+k).
func seqRange(lo int64, k int64) []int64 {
	out := make([]int64, k)
	for i := range out {
		out[i] = lo + int64(i)
	}
	return out
}

func TestStarEngineFindsPlantedStar(t *testing.T) {
	const n = 64
	eng, err := NewStarEngine(StarEngineConfig{
		N: n, Alpha: 1, Eps: 0.5, Seed: 11,
		Shards: 4, BatchSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Center 7 gets 20 neighbours; background vertices stay below degree 4.
	if err := eng.ProcessHalfEdges(undirectedStar(7, seqRange(30, 20))); err != nil {
		t.Fatal(err)
	}
	for _, u := range []int64{2, 9, 13} {
		if err := eng.ProcessEdge(u, u+10); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}

	best, ok := eng.BestFresh()
	if !ok || best.A != 7 {
		t.Fatalf("BestFresh = %+v, %v; want center 7", best, ok)
	}
	// Ladder over M = 64 with eps 0.5: the largest guess <= 20 is 18, and
	// alpha = 1 makes the certified size equal to the guess.
	if best.Guess != 18 || best.Target != 18 || int64(best.Size()) != 18 {
		t.Fatalf("best guess/target/size = %d/%d/%d, want 18/18/18", best.Guess, best.Target, best.Size())
	}
	if guesses := eng.Guesses(); guesses[best.Rung] != best.Guess {
		t.Fatalf("rung %d maps to guess %d, result says %d", best.Rung, guesses[best.Rung], best.Guess)
	}
	// The witnesses are genuine neighbours of 7, in arrival order.
	for i, w := range best.Witnesses {
		if w != 30+int64(i) {
			t.Fatalf("witnesses = %v, want the first 18 neighbours in order", best.Witnesses)
		}
	}

	res := eng.ResultsFresh()
	if res.Rung != best.Rung || len(res.Neighbourhoods) != 1 || res.Neighbourhoods[0].A != 7 {
		t.Fatalf("ResultsFresh = %+v, want exactly center 7 at rung %d", res, best.Rung)
	}

	// Published == fresh after drain, including the star-specific fields.
	if pb, pok := eng.Best(); !pok || !reflect.DeepEqual(pb, best) {
		t.Fatalf("published Best %+v != fresh %+v", pb, best)
	}
	if pr := eng.Results(); !reflect.DeepEqual(pr, res) {
		t.Fatalf("published Results %+v != fresh %+v", pr, res)
	}
	if got, want := eng.SpaceWords(), eng.SpaceWordsFresh(); got != want {
		t.Fatalf("published SpaceWords %d != fresh %d", got, want)
	}
	gotW, gotB := eng.Usage()
	wantW, wantB := eng.UsageFresh()
	if gotW != wantW || gotB != wantB {
		t.Fatalf("published Usage (%d, %d) != fresh (%d, %d)", gotW, gotB, wantW, wantB)
	}
}

// TestStarEngineDeterministic: same seed, same stream => identical
// results regardless of batch size.
func TestStarEngineDeterministic(t *testing.T) {
	stream := undirectedStar(5, seqRange(20, 13))
	stream = append(stream, undirectedStar(40, seqRange(8, 6))...)
	run := func(batch int) StarResults {
		eng, err := NewStarEngine(StarEngineConfig{
			N: 64, Alpha: 2, Eps: 0.5, Seed: 3, Shards: 3, BatchSize: batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		if err := eng.ProcessHalfEdges(stream); err != nil {
			t.Fatal(err)
		}
		eng.Close()
		return eng.Results()
	}
	if a, b := run(1), run(64); !reflect.DeepEqual(a, b) {
		t.Fatalf("batch size changed the answer:\n%+v\n%+v", a, b)
	}
}

func TestStarEngineValidatesUniverse(t *testing.T) {
	eng, err := NewStarEngine(StarEngineConfig{N: 8, M: 16, Alpha: 1, Seed: 1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	if err := eng.ProcessHalfEdge(-1, 0); !errors.Is(err, ErrOutOfUniverse) {
		t.Errorf("negative center = %v, want ErrOutOfUniverse", err)
	}
	if err := eng.ProcessHalfEdge(8, 0); !errors.Is(err, ErrOutOfUniverse) {
		t.Errorf("center == N = %v, want ErrOutOfUniverse", err)
	}
	if err := eng.ProcessHalfEdge(0, 16); !errors.Is(err, ErrOutOfUniverse) {
		t.Errorf("neighbour == M = %v, want ErrOutOfUniverse", err)
	}
	// On a range member (N < M), ProcessEdge cannot mirror a neighbour
	// outside the slice.
	if err := eng.ProcessEdge(1, 12); !errors.Is(err, ErrOutOfUniverse) {
		t.Errorf("undirected mirror outside the slice = %v, want ErrOutOfUniverse", err)
	}
	if got := eng.EdgesProcessed(); got != 0 {
		t.Fatalf("rejected feeds reached the engine: %d half-edges", got)
	}
	eng.Close()
	if err := eng.ProcessHalfEdge(1, 1); !errors.Is(err, ErrClosed) {
		t.Errorf("feed after Close = %v, want ErrClosed", err)
	}
}

// TestStarEngineSnapshotRoundTrip pins byte-identical continuation
// through the kind-2 FEWWENG1 container.
func TestStarEngineSnapshotRoundTrip(t *testing.T) {
	eng, err := NewStarEngine(StarEngineConfig{
		N: 32, Alpha: 1, Eps: 0.5, Seed: 21, Shards: 3, BatchSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pre := undirectedStar(9, seqRange(12, 8))
	post := undirectedStar(9, seqRange(20, 7))
	if err := eng.ProcessHalfEdges(pre); err != nil {
		t.Fatal(err)
	}

	var snap bytes.Buffer
	if err := eng.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Len() != eng.SnapshotSize() {
		t.Fatalf("snapshot wrote %d bytes, SnapshotSize said %d", snap.Len(), eng.SnapshotSize())
	}

	restored, err := RestoreStarEngine(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if restored.EdgesProcessed() != eng.EdgesProcessed() {
		t.Fatalf("restored count %d != %d", restored.EdgesProcessed(), eng.EdgesProcessed())
	}
	if !reflect.DeepEqual(restored.Config(), eng.Config()) {
		t.Fatalf("restored config %+v != %+v", restored.Config(), eng.Config())
	}

	for _, pair := range [][2]*StarEngine{{eng, restored}} {
		for _, e := range pair {
			if err := e.ProcessHalfEdges(post); err != nil {
				t.Fatal(err)
			}
			e.Close()
		}
	}
	if a, b := eng.Results(), restored.Results(); !reflect.DeepEqual(a, b) {
		t.Fatalf("restored continuation diverged:\n%+v\n%+v", a, b)
	}
	var sa, sb bytes.Buffer
	if err := eng.Snapshot(&sa); err != nil {
		t.Fatal(err)
	}
	if err := restored.Snapshot(&sb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa.Bytes(), sb.Bytes()) {
		t.Fatal("continuation snapshots are not byte-identical")
	}

	// Cross-kind restore attempts fail cleanly.
	if _, err := RestoreEngine(bytes.NewReader(snap.Bytes())); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("RestoreEngine on a star snapshot = %v, want ErrBadSnapshot", err)
	}
	if _, err := RestoreTurnstileEngine(bytes.NewReader(snap.Bytes())); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("RestoreTurnstileEngine on a star snapshot = %v, want ErrBadSnapshot", err)
	}

	// A hostile header whose Eps bits encode NaN must fail as
	// ErrBadSnapshot, not hang the ladder derivation (NaN slips past
	// every `<= 0` comparison).  Eps sits after magic(8) + kind(1) +
	// N(8) + M(8) + Alpha(8).
	hostile := append([]byte(nil), snap.Bytes()...)
	binary.LittleEndian.PutUint64(hostile[8+1+3*8:], math.Float64bits(math.NaN()))
	if _, err := RestoreStarEngine(bytes.NewReader(hostile)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("RestoreStarEngine with NaN eps = %v, want ErrBadSnapshot", err)
	}
}

// TestStarEngineRejectsNonFiniteEps: NaN and Inf must fail construction
// instead of hanging the guess-ladder loop.
func TestStarEngineRejectsNonFiniteEps(t *testing.T) {
	for _, eps := range []float64{math.NaN(), math.Inf(1), -0.5} {
		if _, err := NewStarEngine(StarEngineConfig{N: 10, Eps: eps, Alpha: 1}); err == nil {
			t.Errorf("NewStarEngine accepted eps = %f", eps)
		}
	}
}

// TestStarPublishedQueriesNeverTornUnderIngest is the StarEngine
// counterpart of the flat engines' torn-view invariant: while a producer
// feeds a growing star per center at full rate, concurrent barrier-free
// readers must only ever see internally consistent answers — witnesses
// that belong to the reported center, sizes consistent with the reported
// rung's target, and monotone epochs.  Run under -race this also
// validates the publication discipline for the ladder views.
func TestStarPublishedQueriesNeverTornUnderIngest(t *testing.T) {
	const (
		n       = 32
		deg     = 128
		readers = 4
	)
	prevInterval := publishMinInterval
	publishMinInterval = 0
	defer func() { publishMinInterval = prevInterval }()
	eng, err := NewStarEngine(StarEngineConfig{
		N: n, M: n * (deg + 1), Alpha: 1, Eps: 0.5, Seed: 13,
		Shards: 4, BatchSize: 16, QueueDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	var done atomic.Bool
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		done.Store(true)
		t.Errorf(format, args...)
	}
	// Witness encoding: center c's neighbours are c*(deg+1)+1 ... so a
	// witness from another center's slice marks a torn view.  (Centers
	// themselves never appear as witnesses under this scheme.)
	checkNb := func(nb Neighbourhood, target int64) {
		if nb.A < 0 || nb.A >= n {
			fail("published center %d outside the universe", nb.A)
			return
		}
		if int64(nb.Size()) > target {
			fail("neighbourhood for %d has %d witnesses, above the rung target %d", nb.A, nb.Size(), target)
		}
		seen := make(map[int64]bool, len(nb.Witnesses))
		for _, w := range nb.Witnesses {
			if w/(deg+1) != nb.A || w%(deg+1) == 0 {
				fail("witness %d does not belong to center %d: torn view", w, nb.A)
			}
			if seen[w] {
				fail("duplicate witness %d for center %d", w, nb.A)
			}
			seen[w] = true
		}
	}
	guesses := eng.Guesses()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prevEpochs := eng.ViewEpochs()
			prevRung := -1
			for !done.Load() {
				if best, ok := eng.Best(); ok {
					if best.Rung < 0 || best.Rung >= len(guesses) ||
						guesses[best.Rung] != best.Guess || best.Target != best.Guess {
						fail("inconsistent rung labelling: %+v (alpha 1)", best)
					}
					checkNb(best.Neighbourhood, best.Target)
					// Insertion-only ladders only climb: the winning rung
					// a single reader observes must never go down.
					if best.Rung < prevRung {
						fail("winning rung went backwards: %d -> %d", prevRung, best.Rung)
					}
					prevRung = best.Rung
				}
				res := eng.Results()
				for _, nb := range res.Neighbourhoods {
					checkNb(nb, res.Target)
				}
				epochs := eng.ViewEpochs()
				for i := range epochs {
					if epochs[i] < prevEpochs[i] {
						fail("shard %d epoch went backwards: %d -> %d", i, prevEpochs[i], epochs[i])
					}
				}
				prevEpochs = epochs
			}
		}()
	}

	// Single producer: every center's star grows to degree deg, witnesses
	// encoded per center; both orientations fed (the mirrored direction
	// lands on out-of-slice centers only when M > N, so here only the
	// forward halves target real centers — feed them directly).
	for j := int64(1); j <= deg && !done.Load(); j++ {
		batch := make([]Edge, 0, n)
		for c := int64(0); c < n; c++ {
			batch = append(batch, Edge{A: c, B: c*(deg+1) + j})
		}
		if err := eng.ProcessHalfEdges(batch); err != nil {
			t.Errorf("ProcessHalfEdges: %v", err)
			break
		}
	}
	done.Store(true)
	wg.Wait()

	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	res := eng.Results()
	if !reflect.DeepEqual(res, eng.ResultsFresh()) {
		t.Fatal("after drain: published Results differ from fresh Results")
	}
	if len(res.Neighbourhoods) == 0 {
		t.Fatal("after drain: no certified centers on a satisfied promise")
	}
}
