// The generic sharded runtime.  Engine (insertion-only), TurnstileEngine
// (insertion-deletion), StarEngine (star detection) and WindowEngine
// (sliding-window) are thin façades
// over the one implementation in this file: the per-item residue
// partition, the fanout/queue/batch machinery (shard.go), the published
// core.View epochs with their fresh-barrier rendezvous, Drain/Close/
// Flush, the QueueDepths/ViewEpochs/Usage instrumentation, and the
// FEWWENG1 snapshot container.  A façade contributes exactly three
// things: boundary validation for its element type, the per-shard
// algorithm (a shardAlgo implementation from internal/core), and its
// query-merge selection rules where they differ from the default.
//
// The parameterisation is deliberately small.  shardAlgo is the whole
// contract between the runtime and an algorithm: a batched mutation
// entry point over shard-local ids, an immutable query view built from
// quiescent state, and exact snapshot serialisation.  Everything the
// serving layers above rely on — barrier-free published reads that are
// never torn, published == fresh after Drain, snapshots that reflect
// exactly the accepted stream — is proved once here and inherited by
// every engine kind, present and future.

package feww

import (
	"bufio"
	"io"
	"sort"
	"sync/atomic"

	"feww/internal/core"
)

// shardAlgo is the per-shard algorithm instance hosted by the runtime:
// one partition's worth of a streaming algorithm over a sub-universe,
// owned by that shard's worker goroutine.  Apply consumes one batch of
// shard-local elements in stream order; View builds the immutable
// published query surface (only ever called by the owning worker, or
// under the runtime's barrier); Snapshot/SnapshotSize serialise the
// complete mutable state for the FEWWENG1 container.
type shardAlgo[E any] interface {
	Apply(batch []E)
	View() core.View
	// QueryBest and QueryResults are the cheap barrier-read halves of
	// View: the same Best/Results/rung surface, no size accounting, and
	// nothing the caller did not ask for.  Only ever read under the
	// runtime's barrier, within its critical section.
	QueryBest() core.View
	QueryResults() core.View
	SpaceWords() int
	Snapshot(w io.Writer) error
	SnapshotSize() int
	WitnessTarget() int64
}

// The four algorithm adapters.  Each lifts an internal/core type onto
// shardAlgo by naming its batched mutation path; every other method
// promotes from the embedded type.
type insertOnlyAlgo struct{ *core.InsertOnly }

func (a insertOnlyAlgo) Apply(batch []Edge) { a.ProcessEdges(batch) }

type turnstileAlgo struct{ *core.InsertDelete }

func (a turnstileAlgo) Apply(batch []Update) { a.ApplyUpdates(batch) }

type starAlgo struct{ *core.StarShard }

func (a starAlgo) Apply(batch []Edge) { a.ProcessEdges(batch) }

type windowAlgo struct{ *core.WindowShard }

func (a windowAlgo) Apply(batch []core.WindowUpdate) { a.WindowShard.Apply(batch) }

// rtShard is one partition: the residue class it owns, the stride P, the
// algorithm instance, and the shard's latest published result epoch.
type rtShard[E any] struct {
	idx    int   // residue class this shard owns
	stride int64 // P, the total shard count
	algo   shardAlgo[E]
	view   atomic.Pointer[publishedView]
}

// local converts a global item id owned by this shard to its local id.
func (sh *rtShard[E]) local(a int64) int64 { return a / sh.stride }

// global converts a shard-local item id back to the global id.
func (sh *rtShard[E]) global(local int64) int64 { return local*sh.stride + int64(sh.idx) }

// shardUniverse returns the size of shard i's slice of an n-item
// universe under the residue partition with stride p: ceil((n-i)/p).
// Constructors and snapshot restores must agree on this exactly, or the
// local/global id mapping breaks.
func shardUniverse(n, p int64, i int) int64 { return (n - int64(i) + p - 1) / p }

// runtime is the shared engine body.  The zero value is not usable;
// build one with newRuntime.
type engineRuntime[E any] struct {
	shards      []*rtShard[E]
	f           *fanout[E]
	headerBytes int // container header size, for Usage/UsageFresh
}

// newRuntime assembles shards around the given algorithm instances —
// freshly built by a façade constructor, or restored from a snapshot —
// and starts the shard workers.  item extracts an element's global item
// id (the routing key); setItem rewrites it, which is how batches are
// remapped to shard-local ids in place before Apply.  Each shard's
// epoch-0 view is published before any worker starts, so the
// barrier-free query path is valid from the first instant (and, after a
// restore, already reflects the restored state).
func newRuntime[E any](name string, batchSize, queueDepth, headerBytes int,
	item func(E) int64, setItem func(*E, int64), algos []shardAlgo[E]) *engineRuntime[E] {
	p := int64(len(algos))
	shards := make([]*rtShard[E], len(algos))
	apply := make([]func([]E), len(algos))
	publish := make([]func(), len(algos))
	for i, algo := range algos {
		sh := &rtShard[E]{idx: i, stride: p, algo: algo}
		sh.view.Store(&publishedView{View: algo.View()})
		shards[i] = sh
		// The worker remaps the batch to local ids in place (it owns the
		// buffer) and feeds the batched path of the inner algorithm.
		apply[i] = func(batch []E) {
			for j := range batch {
				setItem(&batch[j], sh.local(item(batch[j])))
			}
			sh.algo.Apply(batch)
		}
		// Only shard i's worker calls this, so the read-modify-write of
		// the epoch counter is single-writer and the inner state is quiet.
		publish[i] = func() {
			sh.view.Store(&publishedView{View: sh.algo.View(), Epoch: sh.view.Load().Epoch + 1})
		}
	}
	return &engineRuntime[E]{
		shards:      shards,
		f:           newFanout(name, batchSize, queueDepth, item, apply, publish),
		headerBytes: headerBytes,
	}
}

// forEachView visits every shard's query view in shard order.  With
// fresh false it reads the latest published epochs — no locking, no
// stall, the default consistency.  With fresh true it takes the strict
// barrier and reads each shard with the given accessor (QueryBest or
// QueryResults) from quiescent state, so the visit reflects every
// element fed before the call without paying the publication path's
// size accounting inside the barrier.  Both paths hand
// fn the same View shape, which is what makes published and fresh
// answers coincide byte-for-byte on drained state.
func (rt *engineRuntime[E]) forEachView(fresh bool, read func(shardAlgo[E]) core.View, fn func(sh *rtShard[E], v *core.View)) {
	if fresh {
		rt.f.query(func() {
			for _, sh := range rt.shards {
				v := read(sh.algo)
				fn(sh, &v)
			}
		})
		return
	}
	for _, sh := range rt.shards {
		fn(sh, &sh.view.Load().View)
	}
}

// result returns the first full-target neighbourhood in shard order —
// the smallest-id frequent item of the lowest-index shard holding one —
// or ErrNoWitness.  The same selection under both consistencies.  Both
// paths stop at the first shard holding a result: the fresh barrier
// window must not grow with the shards behind the answer.
func (rt *engineRuntime[E]) result(fresh bool) (Neighbourhood, error) {
	nb, err := Neighbourhood{}, error(ErrNoWitness)
	if fresh {
		rt.f.query(func() {
			for _, sh := range rt.shards {
				if v := sh.algo.QueryResults(); len(v.Results) > 0 {
					nb = v.Results[0]
					nb.A = sh.global(nb.A)
					err = nil
					return
				}
			}
		})
		return nb, err
	}
	for _, sh := range rt.shards {
		if v := sh.view.Load(); len(v.Results) > 0 {
			nb = v.Results[0]
			nb.A = sh.global(nb.A)
			return nb, nil
		}
	}
	return nb, err
}

// results concatenates every shard's full-target neighbourhoods, sorted
// by global item id.  The per-item partition guarantees no item is
// reported by two shards, so the merge is a pure concatenation.
func (rt *engineRuntime[E]) results(fresh bool) []Neighbourhood {
	var out []Neighbourhood
	rt.forEachView(fresh, shardAlgo[E].QueryResults, func(sh *rtShard[E], v *core.View) {
		for _, nb := range v.Results {
			nb.A = sh.global(nb.A)
			out = append(out, nb)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].A < out[j].A })
	return out
}

// best max-selects the largest view Best across shards, ties breaking
// toward the lower shard index; found is false only if no shard holds
// anything.
func (rt *engineRuntime[E]) best(fresh bool) (Neighbourhood, bool) {
	var best Neighbourhood
	found := false
	rt.forEachView(fresh, shardAlgo[E].QueryBest, func(sh *rtShard[E], v *core.View) {
		if v.BestOK && (!found || v.Best.Size() > best.Size()) {
			nb := v.Best
			nb.A = sh.global(nb.A)
			best, found = nb, true
		}
	})
	return best, found
}

// spaceWords sums the state size across shards.  QueryView skips the
// size accounting, so the fresh path reads the algorithms directly
// under the barrier.
func (rt *engineRuntime[E]) spaceWords(fresh bool) int {
	words := 0
	if fresh {
		rt.f.query(func() {
			for _, sh := range rt.shards {
				words += sh.algo.SpaceWords()
			}
		})
		return words
	}
	for _, sh := range rt.shards {
		words += sh.view.Load().SpaceWords
	}
	return words
}

// usage reports SpaceWords and SnapshotSize together: from the published
// epochs (a few atomic loads, what periodic stats polls should call) or
// exact under one quiesce.
func (rt *engineRuntime[E]) usage(fresh bool) (spaceWords, snapshotBytes int) {
	snapshotBytes = rt.headerBytes
	if fresh {
		rt.f.query(func() {
			for _, sh := range rt.shards {
				spaceWords += sh.algo.SpaceWords()
				snapshotBytes += 8 + sh.algo.SnapshotSize()
			}
		})
		return spaceWords, snapshotBytes
	}
	for _, sh := range rt.shards {
		v := sh.view.Load()
		spaceWords += v.SpaceWords
		snapshotBytes += 8 + v.SnapshotBytes
	}
	return spaceWords, snapshotBytes
}

// viewEpochs reports each shard's published epoch number — 0 before the
// first publication, then incremented on every republication.
func (rt *engineRuntime[E]) viewEpochs() []uint64 {
	epochs := make([]uint64, len(rt.shards))
	for i, sh := range rt.shards {
		epochs[i] = sh.view.Load().Epoch
	}
	return epochs
}

// witnessTarget returns the shared per-shard target (identical on every
// shard by construction).
func (rt *engineRuntime[E]) witnessTarget() int64 { return rt.shards[0].algo.WitnessTarget() }

// snapshot writes the FEWWENG1 container under the runtime's quiesce:
// magic, the engine kind byte, the kind-specific header words, the
// producer-side element counter, then every shard's length-prefixed
// algorithm snapshot in shard order.  The queues are empty at the
// instant of serialisation, so every element the engine accepted is
// inside some shard's state.
func (rt *engineRuntime[E]) snapshot(w io.Writer, kind byte, header []uint64) error {
	var err error
	rt.f.query(func() {
		bw := bufio.NewWriter(w)
		enc := &wordEncoder{w: bw}
		enc.bytes(engineSnapMagic[:])
		enc.bytes([]byte{kind})
		for _, h := range header {
			enc.u64(h)
		}
		enc.u64(uint64(rt.f.count.Load()))
		for _, sh := range rt.shards {
			enc.u64(uint64(sh.algo.SnapshotSize()))
			if enc.err == nil {
				enc.err = sh.algo.Snapshot(bw)
			}
		}
		if enc.err != nil {
			err = enc.err
			return
		}
		err = bw.Flush()
	})
	return err
}
