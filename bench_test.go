package feww

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"feww/internal/experiments"
	"feww/internal/workload"
	"feww/internal/xrand"
)

// One benchmark per experiment table (docs/EXPERIMENTS.md §3).  Each iteration
// regenerates the full artefact; the quick configuration is used so the
// whole suite stays benchable (use cmd/fewwbench -full for the
// docs/EXPERIMENTS.md §3 -full-sized runs).
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Run(id, experiments.Config{Seed: uint64(i + 1), Quick: true})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
	}
}

func BenchmarkE1DegResSampling(b *testing.B)   { benchExperiment(b, "E1") }
func BenchmarkE2InsertOnly(b *testing.B)       { benchExperiment(b, "E2") }
func BenchmarkE3SpaceVsThreshold(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4SetDisjointness(b *testing.B)  { benchExperiment(b, "E4") }
func BenchmarkE5BitVectorLearning(b *testing.B) {
	benchExperiment(b, "E5")
}
func BenchmarkE6InsertDelete(b *testing.B)   { benchExperiment(b, "E6") }
func BenchmarkE7MatrixRowIndex(b *testing.B) { benchExperiment(b, "E7") }
func BenchmarkE8StarDetection(b *testing.B)  { benchExperiment(b, "E8") }
func BenchmarkE9L0Sampler(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkE10Ablations(b *testing.B)     { benchExperiment(b, "E10") }
func BenchmarkF1Figure1(b *testing.B)        { benchExperiment(b, "F1") }
func BenchmarkF2Figure2(b *testing.B)        { benchExperiment(b, "F2") }
func BenchmarkF3Figure3(b *testing.B)        { benchExperiment(b, "F3") }

// Throughput benchmarks for the public API on realistic streams.

func BenchmarkInsertOnlyProcessEdge(b *testing.B) {
	for _, alpha := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("alpha=%d", alpha), func(b *testing.B) {
			const n = 1 << 16
			algo, err := NewInsertOnly(Config{N: n, D: 1000, Alpha: alpha, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			rng := xrand.New(2)
			zipf := xrand.NewZipf(rng, 1.2, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algo.ProcessEdge(int64(zipf.Next()), int64(i))
			}
		})
	}
}

// benchEdges pre-generates a Zipf-distributed edge stream shared by the
// ingest benchmarks, so the generator cost stays out of the timed region.
func benchEdges(n int64, count int) []Edge {
	rng := xrand.New(2)
	zipf := xrand.NewZipf(rng, 1.2, int(n))
	edges := make([]Edge, count)
	for i := range edges {
		edges[i] = Edge{A: int64(zipf.Next()), B: int64(i)}
	}
	return edges
}

// BenchmarkInsertOnlyProcessEdges measures the batched single-instance
// path — the same work as BenchmarkInsertOnlyProcessEdge with the
// per-edge dispatch amortised away.
func BenchmarkInsertOnlyProcessEdges(b *testing.B) {
	const n = 1 << 16
	edges := benchEdges(n, 1<<20)
	for _, alpha := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("alpha=%d", alpha), func(b *testing.B) {
			algo, err := NewInsertOnly(Config{N: n, D: 1000, Alpha: alpha, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			const chunk = 4096
			off := 0
			for done := 0; done < b.N; {
				c := chunk
				if c > b.N-done {
					c = b.N - done
				}
				if off+c > len(edges) {
					off = 0
				}
				algo.ProcessEdges(edges[off : off+c])
				off += c
				done += c
			}
		})
	}
}

// BenchmarkEngineIngest measures sharded ingest throughput end-to-end
// (partitioning, batch hand-off, concurrent shard application, drain).
// Compare shards=1 against shards=4 / shards=GOMAXPROCS: on a multi-core
// machine the multi-shard variants should ingest at a multiple of the
// single-shard rate.
func BenchmarkEngineIngest(b *testing.B) {
	const n = 1 << 16
	edges := benchEdges(n, 1<<20)
	counts := []int{1, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		counts = append(counts, g)
	}
	for _, p := range counts {
		b.Run(fmt.Sprintf("shards=%d", p), func(b *testing.B) {
			eng, err := NewEngine(EngineConfig{
				Config: Config{N: n, D: 1000, Alpha: 2, Seed: 1},
				Shards: p,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			const chunk = 4096
			off := 0
			for done := 0; done < b.N; {
				c := chunk
				if c > b.N-done {
					c = b.N - done
				}
				if off+c > len(edges) {
					off = 0
				}
				eng.ProcessEdges(edges[off : off+c])
				off += c
				done += c
			}
			eng.Drain()
			b.StopTimer()
			eng.Close()
		})
	}
}

// BenchmarkEngineQueryUnderIngest measures the serving path this engine
// exists for: query latency while a producer feeds at full rate.  The
// published sub-benchmark reads the shards' atomic result epochs
// (barrier-free); the fresh sub-benchmark takes the strict barrier each
// query and therefore serialises with ingest and with other queriers.
// The ratio between the two is the cost of strict consistency — tracked
// over time next to BENCH_mixed.json (fewwbench -mode mixed).
func BenchmarkEngineQueryUnderIngest(b *testing.B) {
	const n = 1 << 16
	edges := benchEdges(n, 1<<20)
	for _, mode := range []string{"published", "fresh"} {
		b.Run(mode, func(b *testing.B) {
			eng, err := NewEngine(EngineConfig{
				Config: Config{N: n, D: 1000, Alpha: 2, Seed: 1},
			})
			if err != nil {
				b.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // full-rate ingest, looping the stream until stopped
				defer wg.Done()
				const chunk = 4096
				off := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					if off+chunk > len(edges) {
						off = 0
					}
					if err := eng.ProcessEdges(edges[off : off+chunk]); err != nil {
						b.Error(err)
						return
					}
					off += chunk
				}
			}()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if mode == "fresh" {
						eng.BestFresh()
					} else {
						eng.Best()
					}
				}
			})
			b.StopTimer()
			close(stop)
			wg.Wait()
			eng.Close()
		})
	}
}

func BenchmarkInsertDeleteUpdate(b *testing.B) {
	for _, scale := range []float64{0.01, 0.05} {
		b.Run(fmt.Sprintf("scale=%g", scale), func(b *testing.B) {
			const n, m = 256, 1024
			algo, err := NewInsertDelete(TurnstileConfig{
				N: n, M: m, D: 32, Alpha: 2, Seed: 1, ScaleFactor: scale,
			})
			if err != nil {
				b.Fatal(err)
			}
			rng := xrand.New(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algo.Insert(rng.Int64n(n), rng.Int64n(m))
			}
		})
	}
}

func BenchmarkStarDetectorSocial(b *testing.B) {
	ups := workload.SocialGraph(3, 4000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sd, err := NewStarDetector(StarConfig{N: 4000, Alpha: 2, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		for _, u := range ups {
			if err := sd.ProcessEdge(u.A, u.B); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := sd.Result(); err != nil {
			b.Fatal(err)
		}
	}
}
