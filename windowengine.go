// WindowEngine is the fourth façade over the generic sharded runtime
// (runtime.go): sliding-window FEwW — "which item is frequent with
// witnesses over the last Window updates" — served with the exact
// contract of the other three kinds.  Each shard hosts a
// core.WindowShard: a ladder of suffix InsertOnly instances started at
// bucket boundaries of the *global* stream, serving the oldest instance
// still inside the window and expiring whole instances in O(1); see the
// WindowShard godoc for the construction and its space/recency trade-off
// against the paper's Algorithm 2 bounds.
//
// Two runtime hooks make the window engine-wide rather than per-shard.
// First, every accepted edge is stamped with its 0-based global arrival
// position — reserved atomically, stamped before routing — so bucket
// boundaries align across shards and a shard's answers age against the
// whole stream's progress, not just its own sub-stream's.  Second, the
// engine owns the clock the shards age against (the accepted count,
// advanced by a CAS-max at each reservation), and shard workers
// republish on every barrier even when idle: a shard whose items stopped arriving still
// ages out as *other* shards' traffic advances the clock, and
// Drain still leaves published and fresh answers coinciding.
package feww

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"feww/internal/core"
	"feww/internal/stream"
	"feww/internal/xrand"
)

// WindowEngineConfig parameterises the sharded sliding-window engine.
type WindowEngineConfig struct {
	// Config describes the global problem exactly as for Engine: universe
	// size N, frequency threshold D, approximation factor Alpha, master
	// Seed, reservoir ScaleFactor.  D counts in-window occurrences.
	Config

	// Window is the sliding window length W, in accepted updates across
	// the whole engine (all shards).  Required, >= 1.
	Window int64
	// Buckets is the number of sub-windows B (default 8, clamped to
	// Window): expiry happens in whole buckets of width ceil(W/B), live
	// space is multiplied by at most B+1, and the served window's one-
	// sided slack is under one bucket width.  Cluster members of one
	// logical window must share B (and split W); the gateway checks.
	Buckets int64

	// Shards, BatchSize, QueueDepth behave exactly as in EngineConfig.
	Shards     int
	BatchSize  int
	QueueDepth int
}

// resolve applies defaults and clamps; the resolved form is what
// Snapshot persists.
func (cfg *WindowEngineConfig) resolve() error {
	if cfg.Window < 1 {
		return fmt.Errorf("feww: WindowEngine config: Window = %d, want >= 1", cfg.Window)
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 8
		if cfg.Buckets > cfg.Window {
			cfg.Buckets = cfg.Window
		}
	}
	if cfg.Buckets < 1 || cfg.Buckets > cfg.Window {
		return fmt.Errorf("feww: WindowEngine config: Buckets = %d, want 1 <= Buckets <= Window = %d",
			cfg.Buckets, cfg.Window)
	}
	return resolveShardParams("WindowEngine", cfg.N, &cfg.Shards, &cfg.BatchSize, &cfg.QueueDepth)
}

// shardConfig derives shard i's WindowShard configuration; snapshot
// restore verifies shard snapshots against exactly this derivation.
// Window and Buckets are global, not divided: positions are global
// stream positions, so every shard ages against the same boundaries.
func (cfg *WindowEngineConfig) shardConfig(i int, p int64, seed uint64) core.WindowShardConfig {
	return core.WindowShardConfig{
		N:           shardUniverse(cfg.N, p, i),
		D:           cfg.D,
		Alpha:       cfg.Alpha,
		Window:      cfg.Window,
		Buckets:     cfg.Buckets,
		Seed:        seed,
		ScaleFactor: cfg.ScaleFactor,
	}
}

// WindowEngine is the sharded, batched sliding-window engine.  It
// carries the runtime's full contract — safe for any number of
// concurrent producers and queriers, deterministic under a fixed seed
// and single producer, barrier-free published queries with Fresh
// variants, exact Snapshot/Restore — inherited from the same
// implementation the other engine kinds run on.
type WindowEngine struct {
	cfg   WindowEngineConfig
	clock atomic.Int64 // accepted updates; the shards' shared age source
	rt    *engineRuntime[core.WindowUpdate]
}

// NewWindowEngine constructs a sharded window engine and starts its
// shard goroutines.  Shard p owns items {a in [0, N) : a % P == p}, each
// as a WindowShard over a universe of size ceil((N-p)/P) with a seed
// derived from cfg.Seed.
func NewWindowEngine(cfg WindowEngineConfig) (*WindowEngine, error) {
	if err := cfg.resolve(); err != nil {
		return nil, err
	}
	eng := &WindowEngine{cfg: cfg}
	p := int64(cfg.Shards)
	seeds := xrand.New(cfg.Seed)
	shards := make([]*core.WindowShard, cfg.Shards)
	for i := range shards {
		ws, err := core.NewWindowShard(cfg.shardConfig(i, p, seeds.Uint64()), eng.clock.Load)
		if err != nil {
			return nil, fmt.Errorf("feww: WindowEngine shard %d: %w", i, err)
		}
		shards[i] = ws
	}
	eng.start(shards)
	return eng, nil
}

// start assembles the runtime around existing shards (fresh or restored)
// and installs the two window hooks.  The restore path must store the
// clock (and only then call start): the runtime publishes each shard's
// epoch-0 view during construction, and those views judge instance
// liveness by the clock.
func (e *WindowEngine) start(shards []*core.WindowShard) {
	algos := make([]shardAlgo[core.WindowUpdate], len(shards))
	for i, ws := range shards {
		algos[i] = windowAlgo{ws}
	}
	e.rt = newRuntime("WindowEngine", e.cfg.BatchSize, e.cfg.QueueDepth, windowSnapHeaderBytes,
		func(u core.WindowUpdate) int64 { return u.A },
		func(u *core.WindowUpdate, a int64) { u.A = a },
		algos)
	// Positions are dense, unique and reservation-ordered, and the clock
	// equals the accepted count.  The clock advances in the reserve hook —
	// once per reservation, before any element of the range is stamped or
	// routed — so a batch handed to a worker happens-after the clock
	// covering its last element, and a worker's view never treats an
	// instance as live that its own batch already aged out.  Reservations
	// race lock-free, so the advance is a CAS-max: a producer whose range
	// linearised earlier must never drag the clock backwards just because
	// it reached the hook later.
	e.rt.f.reserve = func(base, n int64) {
		for {
			cur := e.clock.Load()
			if base+n <= cur || e.clock.CompareAndSwap(cur, base+n) {
				return
			}
		}
	}
	e.rt.f.stamp = func(u *core.WindowUpdate, pos int64) {
		u.Pos = pos
	}
	// Idle shards must republish at barriers: their liveness horizon moves
	// with the global clock even when no local traffic arrives.
	e.rt.f.publishOnAck = true
}

// Shards returns the number of partitions in use.
func (e *WindowEngine) Shards() int { return len(e.rt.shards) }

// Config returns the resolved configuration the engine runs with; it is
// also the configuration a snapshot persists.
func (e *WindowEngine) Config() WindowEngineConfig { return e.cfg }

// Window returns the configured window length W.
func (e *WindowEngine) Window() int64 { return e.cfg.Window }

// Buckets returns the resolved sub-window count B.
func (e *WindowEngine) Buckets() int64 { return e.cfg.Buckets }

// WindowSpan returns the stream-position interval the engine currently
// serves: start is the oldest bucket boundary still inside the window
// (0 until the stream outgrows it), end the accepted count.  It is what
// the server surfaces as the window position on /stats.
func (e *WindowEngine) WindowSpan() (start, end int64) {
	end = e.clock.Load()
	return core.WindowStart(end, e.cfg.Window, e.cfg.Buckets), end
}

// checkEdge validates an edge against the engine's universe: the item in
// [0, N), the witness non-negative (the witness space is unbounded, as
// for the insertion-only Engine).
func (e *WindowEngine) checkEdge(i, total int, a, b int64) error {
	if a < 0 || a >= e.cfg.N {
		return fmt.Errorf("%w: edge %d of %d: item %d not in [0, %d)", ErrOutOfUniverse, i, total, a, e.cfg.N)
	}
	if b < 0 {
		return fmt.Errorf("%w: edge %d of %d: witness %d negative", ErrOutOfUniverse, i, total, b)
	}
	return nil
}

// ProcessEdge feeds one inserted edge (a, b).  The update occupies one
// window position; what it displaces is whatever bucket falls out of the
// window as the stream advances.  Errors as (*Engine).ProcessEdge.
func (e *WindowEngine) ProcessEdge(a, b int64) error {
	if err := e.checkEdge(0, 1, a, b); err != nil {
		return err
	}
	return e.rt.f.add(core.WindowUpdate{Edge: stream.Edge{A: a, B: b}})
}

// windowBufPool recycles the []core.WindowUpdate conversion buffers of
// ProcessEdges (as *[]T, so recycling does not re-box the slice header).
// The fanout copies batches into per-shard buffers before returning, so
// a buffer is safe to recycle as soon as addBatch returns.
var windowBufPool sync.Pool

// ProcessEdges feeds a batch of inserted edges in order.  The slice is
// validated whole, rejected atomically, converted into position-carrying
// updates through a pooled buffer, and copied into per-shard buffers;
// the caller keeps ownership.
func (e *WindowEngine) ProcessEdges(edges []Edge) error {
	for i, ed := range edges {
		if err := e.checkEdge(i, len(edges), ed.A, ed.B); err != nil {
			return err
		}
	}
	var buf *[]core.WindowUpdate
	if v := windowBufPool.Get(); v != nil {
		buf = v.(*[]core.WindowUpdate)
	} else {
		buf = new([]core.WindowUpdate)
	}
	ups := (*buf)[:0]
	for _, ed := range edges {
		ups = append(ups, core.WindowUpdate{Edge: ed})
	}
	err := e.rt.f.addBatch(ups)
	*buf = ups[:0]
	windowBufPool.Put(buf)
	return err
}

// Flush hands every buffered update to its shard queue without waiting;
// see (*Engine).Flush.
func (e *WindowEngine) Flush() error { return e.rt.f.flush() }

// Drain flushes and blocks until every shard has applied everything
// queued so far; afterwards published and fresh queries coincide — the
// barrier republication covers idle shards too.
func (e *WindowEngine) Drain() error { return e.rt.f.drain() }

// Close flushes, waits for the shards to drain, and stops them.  The
// engine stays queryable; feeding returns ErrClosed.  Idempotent.
func (e *WindowEngine) Close() { e.rt.f.close() }

// Closed reports whether Close has run; see (*Engine).Closed.
func (e *WindowEngine) Closed() bool { return e.rt.f.isClosed() }

// Result returns the first in-window full-target neighbourhood in shard
// order, or ErrNoWitness; see (*Engine).Result for the consistency
// contract.
func (e *WindowEngine) Result() (Neighbourhood, error) { return e.rt.result(false) }

// ResultFresh is Result under the strict barrier.
func (e *WindowEngine) ResultFresh() (Neighbourhood, error) { return e.rt.result(true) }

// Results returns every item holding a full ceil(D/Alpha)-witness
// in-window neighbourhood, sorted by item id, from the latest published
// epochs.  Witnesses are never older than Window updates.
func (e *WindowEngine) Results() []Neighbourhood { return e.rt.results(false) }

// ResultsFresh is Results under the strict barrier.
func (e *WindowEngine) ResultsFresh() []Neighbourhood { return e.rt.results(true) }

// Best returns the largest in-window neighbourhood collected so far,
// possibly below the witness target; found is false only if nothing
// in-window is held at all.
func (e *WindowEngine) Best() (Neighbourhood, bool) { return e.rt.best(false) }

// BestFresh is Best under the strict barrier.
func (e *WindowEngine) BestFresh() (Neighbourhood, bool) { return e.rt.best(true) }

// WitnessTarget returns ceil(D/Alpha), identical on every shard.
func (e *WindowEngine) WitnessTarget() int64 { return e.rt.witnessTarget() }

// EdgesProcessed returns the number of updates accepted over the
// engine's lifetime — the window's end position.
func (e *WindowEngine) EdgesProcessed() int64 { return e.rt.f.count.Load() }

// QueueDepths samples the number of elements buffered per shard (queued
// batches plus the fill buffer); see (*Engine).QueueDepths.
func (e *WindowEngine) QueueDepths() []int { return e.rt.f.queueDepths() }

// ViewEpochs reports each shard's published epoch number; see
// (*Engine).ViewEpochs.
func (e *WindowEngine) ViewEpochs() []uint64 { return e.rt.viewEpochs() }

// SpaceWords reports the state size summed over the latest published
// epochs — every retained suffix instance of every shard.
func (e *WindowEngine) SpaceWords() int { return e.rt.spaceWords(false) }

// SpaceWordsFresh is SpaceWords under the strict barrier.
func (e *WindowEngine) SpaceWordsFresh() int { return e.rt.spaceWords(true) }

// Usage reports SpaceWords and SnapshotSize from the latest published
// epochs; see (*Engine).Usage.
func (e *WindowEngine) Usage() (spaceWords, snapshotBytes int) { return e.rt.usage(false) }

// UsageFresh reports both under a single quiesce; see (*Engine).UsageFresh.
func (e *WindowEngine) UsageFresh() (spaceWords, snapshotBytes int) { return e.rt.usage(true) }

// Snapshot writes the engine's complete state in the FEWWENG1 container
// (kind byte 3); the same quiescing and exactness guarantees as
// (*Engine).Snapshot apply.  Bucket boundaries are global positions, so
// the container needs no extra geometry beyond Window, Buckets and the
// accepted count: each shard serialises its live suffix instances with
// their boundary labels, and restore re-derives everything else.
func (e *WindowEngine) Snapshot(w io.Writer) error {
	return e.rt.snapshot(w, engineKindWindow, []uint64{
		uint64(e.cfg.N),
		uint64(e.cfg.D),
		uint64(e.cfg.Alpha),
		uint64(e.cfg.Window),
		uint64(e.cfg.Buckets),
		e.cfg.Seed,
		math.Float64bits(e.cfg.ScaleFactor),
		uint64(e.cfg.Shards),
		uint64(e.cfg.BatchSize),
		uint64(e.cfg.QueueDepth),
	})
}

// SnapshotSize returns the exact byte length Snapshot would write, under
// the same quiesce Snapshot itself takes.
func (e *WindowEngine) SnapshotSize() int {
	_, size := e.UsageFresh()
	return size
}

// RestoreWindowEngine reads a snapshot written by (*WindowEngine).Snapshot
// and returns a running engine that continues exactly where the
// snapshotted one stopped: same window geometry, same bucket boundaries,
// same positions — the next accepted update is stamped with the position
// after the last pre-snapshot one, so the restored stream is
// indistinguishable from an uninterrupted run.
func RestoreWindowEngine(r io.Reader) (*WindowEngine, error) {
	br := bufio.NewReader(r)
	kind, err := readEngineSnapKind(br)
	if err != nil {
		return nil, err
	}
	if kind != engineKindWindow {
		return nil, fmt.Errorf("%w: snapshot holds engine kind %d, not a WindowEngine", ErrBadSnapshot, kind)
	}
	dec := &wordDecoder{r: br}
	cfg := WindowEngineConfig{
		Config: Config{
			N:     int64(dec.u64()),
			D:     int64(dec.u64()),
			Alpha: int(dec.u64()),
		},
		Window:  int64(dec.u64()),
		Buckets: int64(dec.u64()),
	}
	cfg.Seed = dec.u64()
	cfg.ScaleFactor = math.Float64frombits(dec.u64())
	cfg.Shards = int(dec.u64())
	cfg.BatchSize = int(dec.u64())
	cfg.QueueDepth = int(dec.u64())
	count := int64(dec.u64())
	if dec.err != nil {
		return nil, dec.err
	}
	if err := validateEngineSnapHeader(cfg.N, cfg.Shards, cfg.BatchSize, cfg.QueueDepth, count); err != nil {
		return nil, err
	}
	if cfg.Window < 1 || cfg.Buckets < 1 || cfg.Buckets > cfg.Window {
		return nil, fmt.Errorf("%w: window header W %d B %d", ErrBadSnapshot, cfg.Window, cfg.Buckets)
	}
	// The clock must be in place before any shard view is built: the
	// runtime publishes epoch-0 views during start, and a zero clock
	// would misjudge every restored instance's liveness.
	eng := &WindowEngine{cfg: cfg}
	eng.clock.Store(count)
	p := int64(cfg.Shards)
	seeds := xrand.New(cfg.Seed)
	shards := make([]*core.WindowShard, cfg.Shards)
	for i := range shards {
		want := cfg.shardConfig(i, p, seeds.Uint64())
		// RestoreWindowShard cross-checks every instance snapshot against
		// the derived configuration, so no separate comparison is needed.
		restore := func(r io.Reader) (*core.WindowShard, error) {
			return core.RestoreWindowShard(r, want, eng.clock.Load)
		}
		if shards[i], err = restoreShard(dec, restore, i); err != nil {
			return nil, err
		}
	}
	eng.start(shards)
	eng.rt.f.restoreCount(count)
	return eng, nil
}
