module feww

go 1.24
