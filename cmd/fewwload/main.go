// Command fewwload replays a synthetic workload scenario against a
// running fewwd instance and reports the achieved ingest rate.  It is the
// load-generation half of the service pair: fewwd owns the engine,
// fewwload drives it over HTTP with the same generators the experiments
// use (internal/workload), so the planted ground truth is known and the
// served answer can be verified, not just timed.
//
// Usage:
//
//	fewwload -scenario zipf -n 100000 -edges 1000000 -d 2000
//	fewwload -scenario dos -n 20000 -d 3000 -heavy 3 -edges 80000
//	fewwload -scenario churn -n 500 -m 2000 -d 50 -edges 2000     (fewwd -turnstile)
//	fewwload -scenario planted -checkpoint-every 20 -verify
//	fewwload -scenario star -n 2000 -d 300 -edges 4000      (fewwd -algo star)
//	fewwload -scenario window -d 40 -edges 200000           (fewwd -algo window)
//	fewwload -queryclients 8              # poll /best concurrently during replay
//	fewwload -queryclients 8 -fresh       # same, on the ?fresh=1 barrier path
//	fewwload -gateway -addr http://127.0.0.1:9000   # drive a fewwgate cluster
//
// Scenarios: zipf (frequent items in a Zipf tail), planted (heavy
// vertices in Zipf noise), dos (victims receiving distinct-source
// floods), churn (planted structure under insert-then-delete noise;
// requires a turnstile fewwd), star (a general graph with a planted
// maximum-degree star streamed as directed half-edges; requires
// fewwd -algo star — or a fewwgate over star members, where the
// half-edges range-route by center and the merged answer is verified
// against the planted graph exactly like a single node), window (a
// rotating-heavy zipfian item stream shaped around the target's probed
// window geometry; requires fewwd -algo window, and verifies the served
// answers against an exact sliding-window recount — including, with
// alpha=1 and aligned geometry, exact set equality).
//
// With -gateway the target is a fewwgate cluster instead of a single
// node: the replay is unchanged (the gateway mirrors the fewwd endpoint
// surface and splits each request across its members), but readiness is
// checked against the cluster /healthz — every member must be serving
// its range — and the ground-truth verification runs against the merged
// cluster results.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"feww/cluster"
	"feww/internal/benchstat"
	"feww/internal/stream"
	"feww/internal/workload"
	"feww/server"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "fewwd base URL")
		scenario  = flag.String("scenario", "zipf", "workload: zipf | planted | dos | churn | star | window")
		n         = flag.Int64("n", 100000, "item universe size |A|")
		m         = flag.Int64("m", 0, "witness universe size |B| (default 4n; zipf uses the stream length)")
		d         = flag.Int64("d", 2000, "heavy degree / frequency threshold")
		heavy     = flag.Int("heavy", 3, "planted heavy vertices (planted/dos/churn)")
		edges     = flag.Int("edges", 1000000, "stream length / noise edges")
		skew      = flag.Float64("skew", 1.2, "Zipf exponent")
		seed      = flag.Uint64("seed", 1, "workload seed")
		reqSize   = flag.Int("reqsize", 50000, "updates per /ingest request")
		ckptEvery = flag.Int("checkpoint-every", 0, "POST /checkpoint every k requests (0 = never)")
		verify    = flag.Bool("verify", true, "verify served witnesses against the planted ground truth")
		qClients  = flag.Int("queryclients", 0, "concurrent /best pollers running during the replay (0 = none)")
		qFresh    = flag.Bool("fresh", false, "pollers use /best?fresh=1 (barrier consistency) instead of the published path")
		gateway   = flag.Bool("gateway", false, "the target is a fewwgate cluster: check cluster readiness and verify against the merged results")
		ranges    = flag.Int("ranges", 0, "window: compose the stream as this many round-robin ranges (0 = the target's own range count; set it to feed a single node the byte-identical stream a gateway with that many ranges receives)")
	)
	flag.Parse()

	// The target is probed before the workload is generated: the window
	// scenario shapes its stream around the engine's window geometry (and,
	// against a gateway, its range partition), which only the target knows.
	cl := &server.Client{Base: *addr}
	var hz cluster.HealthzResponse
	if *gateway {
		var err error
		hz, err = gatewayHealth(*addr)
		if err != nil {
			log.Fatalf("fewwload: cannot reach fewwgate at %s: %v", *addr, err)
		}
		if !hz.Serving {
			for _, m := range hz.Members {
				if !m.Ready {
					log.Printf("fewwload: member %s serving %s not ready: %s", m.URL, m.Range, m.Error)
				}
			}
			log.Fatalf("fewwload: cluster at %s is not ready", *addr)
		}
		fmt.Printf("gateway: %s cluster, %d members, universe n=%d\n", hz.Engine, len(hz.Members), hz.N)
	} else if _, err := cl.Stats(); err != nil {
		log.Fatalf("fewwload: cannot reach fewwd at %s: %v", *addr, err)
	}

	var (
		inst             *workload.Planted
		streamN, streamM int64
		geom             *windowGeometry
		err              error
	)
	if *scenario == "window" {
		inst, streamN, streamM, geom, err = generateWindow(cl, hz, *gateway, *d, *edges, *skew, *seed, *ranges)
	} else {
		inst, streamN, streamM, err = generate(*scenario, *n, *m, *d, *heavy, *edges, *skew, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}
	st := stream.Summarize(inst.Updates)
	fmt.Printf("workload: %s, %d updates (%d inserts, %d deletes), %d heavy, max degree %d\n",
		*scenario, st.Updates, st.Inserts, st.Deletes, len(inst.HeavyA), st.MaxDegreeA)

	// Optional concurrent query load: k pollers hammering /best while the
	// replay runs, measuring what the serving path sustains under ingest.
	stopPolling := make(chan struct{})
	var pollWG sync.WaitGroup
	samplers := make([]benchstat.Sampler, *qClients)
	for c := 0; c < *qClients; c++ {
		pollWG.Add(1)
		go func(c int) {
			defer pollWG.Done()
			for {
				select {
				case <-stopPolling:
					return
				default:
				}
				t0 := time.Now()
				var err error
				if *qFresh {
					_, err = cl.BestFresh()
				} else {
					_, err = cl.Best()
				}
				if err != nil {
					continue // transient; the replay loop reports hard failures
				}
				samplers[c].Observe(time.Since(t0))
			}
		}(c)
	}

	start := time.Now()
	var sent int64
	requests := 0
	for lo := 0; lo < len(inst.Updates); lo += *reqSize {
		hi := min(lo+*reqSize, len(inst.Updates))
		resp, err := cl.Ingest(streamN, streamM, inst.Updates[lo:hi])
		if err != nil {
			log.Fatalf("fewwload: request %d: %v", requests, err)
		}
		sent += resp.Accepted
		requests++
		if *ckptEvery > 0 && requests%*ckptEvery == 0 {
			ck, err := cl.Checkpoint()
			if err != nil {
				log.Fatalf("fewwload: checkpoint after request %d: %v", requests, err)
			}
			fmt.Printf("  checkpoint after %d updates: %d bytes\n", sent, ck.Bytes)
		}
	}
	elapsed := time.Since(start)
	close(stopPolling)
	pollWG.Wait()
	fmt.Printf("replayed %d updates in %d requests over %v: %.0f updates/sec\n",
		sent, requests, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds())
	if *qClients > 0 {
		all, queries := benchstat.Merge(samplers)
		mode := "published"
		if *qFresh {
			mode = "fresh"
		}
		fmt.Printf("query load (%s, %d clients): %d queries, %.0f q/s, p50 %v, p99 %v\n",
			mode, *qClients, queries, float64(queries)/elapsed.Seconds(),
			benchstat.Quantile(all, 0.50).Round(time.Microsecond),
			benchstat.Quantile(all, 0.99).Round(time.Microsecond))
	}

	stats, err := cl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %s engine, %d shards, %d elements, %d space words, snapshot %d bytes, queues %v\n",
		stats.Engine, stats.Shards, stats.Elements, stats.SpaceWords, stats.SnapshotBytes, stats.QueueDepths)

	// The final answer is fetched on the barrier path: the ground-truth
	// verification below must see every replayed update reflected.
	if geom != nil {
		if err := verifyWindow(cl, inst, *geom, *d, sent, *verify); err != nil {
			log.Fatalf("fewwload: %v", err)
		}
		return
	}
	best, err := cl.BestFresh()
	if err != nil {
		log.Fatal(err)
	}
	if !best.Found {
		fmt.Println("result: no witnessed neighbourhood collected")
		os.Exit(1)
	}
	fmt.Printf("result: vertex %d with %d witnesses (target %d)\n",
		best.Neighbourhood.Vertex, best.Neighbourhood.Size, best.WitnessTarget)
	if *verify {
		if err := inst.Verify(best.Neighbourhood.Vertex, best.Neighbourhood.Witnesses); err != nil {
			log.Fatalf("fewwload: served witnesses FAILED verification: %v", err)
		}
		fmt.Println("verified: every served witness is a real edge of the generated stream")
	}
}

// gatewayHealth fetches and decodes a fewwgate /healthz, which carries
// the per-member readiness the single-node client does not model.  The
// probe gets its own deadline: a gateway that accepts the connection but
// never answers must fail the check, not hang the replay.
func gatewayHealth(base string) (cluster.HealthzResponse, error) {
	var out cluster.HealthzResponse
	hc := &http.Client{Timeout: 15 * time.Second}
	resp, err := hc.Get(strings.TrimRight(base, "/") + "/healthz")
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	// 503 still carries the full per-member breakdown; decode either way.
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// windowGeometry is the window scenario's record of the target's
// configuration, read from its health probe: the (global) window length
// and bucket count, the witness target, and the cluster's range count
// (1 against a single node).
type windowGeometry struct {
	window, buckets, target int64
	ranges                  int
}

// generateWindow builds the window scenario around the probed target: a
// rotating-heavy zipfian stream whose head moves roughly once per window.
// Against a gateway the stream is composed of one item sequence per
// range, interleaved strictly round-robin, so each member sees every
// R-th update and the member windows of W/R compose into the global
// window the gateway reports.
func generateWindow(cl *server.Client, hz cluster.HealthzResponse, gateway bool, d int64, edges int, skew float64, seed uint64, rangesOverride int) (*workload.Planted, int64, int64, *windowGeometry, error) {
	geom := &windowGeometry{ranges: 1}
	var n int64
	if gateway {
		if rangesOverride > 0 {
			return nil, 0, 0, nil, fmt.Errorf("-ranges is for feeding a single node a cluster-shaped stream; a gateway's range count comes from its /healthz")
		}
		if hz.Engine != "window" {
			return nil, 0, 0, nil, fmt.Errorf("-scenario window needs a window cluster, target serves %q", hz.Engine)
		}
		n, geom.ranges = hz.N, hz.Groups
		geom.window, geom.buckets, geom.target = hz.Window, hz.WindowBuckets, hz.WitnessTarget
	} else {
		h, err := cl.Health()
		if err != nil {
			return nil, 0, 0, nil, err
		}
		if h.Engine != "window" {
			return nil, 0, 0, nil, fmt.Errorf("-scenario window needs fewwd -algo window, target serves %q", h.Engine)
		}
		n = h.N
		geom.window, geom.buckets, geom.target = h.Window, h.WindowBuckets, h.WitnessTarget
	}
	if geom.window < 1 || geom.buckets < 1 {
		return nil, 0, 0, nil, fmt.Errorf("target reports window geometry %d/%d", geom.window, geom.buckets)
	}
	r := int64(geom.ranges)
	if rangesOverride > 0 {
		// Compose the stream exactly as a gateway with this many ranges
		// would receive it, so a single full-universe node can be driven
		// with the byte-identical input and its answers byte-compared
		// against the cluster's.
		r = int64(rangesOverride)
	}
	if n%r != 0 {
		return nil, 0, 0, nil, fmt.Errorf("universe %d does not split evenly over %d ranges", n, r)
	}
	perPart := int64(edges) / r
	phases := max(2, int(perPart*r/geom.window))
	parts := make([][]int64, r)
	for i := int64(0); i < r; i++ {
		items, err := workload.WindowZipfItems(workload.WindowZipfConfig{
			N: n / r, Total: int(perPart), Phases: phases, Skew: skew, Seed: seed + uint64(i),
		})
		if err != nil {
			return nil, 0, 0, nil, err
		}
		parts[i] = items
	}
	inst, err := workload.ComposeWindowStream(n/r, parts)
	if err != nil {
		return nil, 0, 0, nil, err
	}
	fmt.Printf("window: length %d over %d buckets, %d ranges, witness target %d, %d rotation phases\n",
		geom.window, geom.buckets, r, geom.target, phases)
	return inst, n, int64(len(inst.Updates)), geom, nil
}

// verifyWindow checks the served window answers against a sliding-window
// recount of the replayed stream.  Soundness holds unconditionally: every
// served witness must be a genuine in-window arrival position of its
// item, and every neighbourhood full-target.  When the target equals d
// (alpha = 1, the deterministic sample-everything regime) — and, against
// a cluster, when the geometry divides evenly enough for member windows
// to align with the global one — the served item set must *equal* the
// recount's >= d set exactly.
func verifyWindow(cl *server.Client, inst *workload.Planted, geom windowGeometry, d, sent int64, verify bool) error {
	width := (geom.window + geom.buckets - 1) / geom.buckets
	start := int64(0)
	if sent > geom.window {
		start = (sent - geom.window + width - 1) / width * width
	}
	nbs, err := cl.ResultsFresh()
	if err != nil {
		return err
	}
	recount := workload.WindowRecount(inst.Updates, start)
	var heavy []int64
	for a, c := range recount {
		if c >= d {
			heavy = append(heavy, a)
		}
	}
	fmt.Printf("result: window [%d, %d) of %d updates, %d items served, recount holds %d items >= %d\n",
		start, sent, sent, len(nbs), len(heavy), d)
	if !verify {
		return nil
	}
	served := make(map[int64]bool, len(nbs))
	for _, nb := range nbs {
		if int64(nb.Size) != geom.target {
			return fmt.Errorf("served item %d with %d witnesses, target is %d", nb.Vertex, nb.Size, geom.target)
		}
		if err := inst.Verify(nb.Vertex, nb.Witnesses); err != nil {
			return err
		}
		for _, b := range nb.Witnesses {
			if b < start || b >= sent {
				return fmt.Errorf("served witness %d of item %d outside the window [%d, %d): stale state survived expiry", b, nb.Vertex, start, sent)
			}
		}
		served[nb.Vertex] = true
	}
	exact := geom.target == d && (geom.ranges == 1 || geom.window%(int64(geom.ranges)*geom.buckets) == 0)
	if !exact {
		fmt.Println("verified: every served witness is a genuine in-window occurrence (exactness needs alpha=1 and aligned cluster geometry)")
		return nil
	}
	for _, a := range heavy {
		if !served[a] {
			return fmt.Errorf("item %d has %d in-window occurrences (>= %d) but was not served", a, recount[a], d)
		}
	}
	for a := range served {
		if recount[a] < d {
			return fmt.Errorf("served item %d has only %d in-window occurrences (< %d)", a, recount[a], d)
		}
	}
	fmt.Printf("verified: served set matches the sliding-window recount exactly (%d items), all witnesses in-window\n", len(heavy))
	return nil
}

// generate builds the requested scenario and returns it with the
// universe sizes the encoded stream should declare.
func generate(scenario string, n, m, d int64, heavy, edges int, skew float64, seed uint64) (*workload.Planted, int64, int64, error) {
	if m == 0 {
		m = 4 * n
	}
	switch scenario {
	case "zipf":
		inst := workload.ZipfItems(seed, n, edges, skew, d)
		return inst, n, int64(edges), nil
	case "planted":
		inst, err := workload.NewPlanted(workload.PlantedConfig{
			N: n, M: m, Heavy: heavy, HeavyDeg: d,
			NoiseEdges: edges, NoiseSkew: skew, MaxNoise: d / 3,
			Order: workload.Shuffled, Seed: seed,
		})
		return inst, n, m, err
	case "dos":
		cfg := workload.DoSConfig{
			Targets: n, Sources: max(n/10, 2), Window: 256,
			Victims: heavy, AttackReqs: d, Background: edges, Seed: seed,
		}
		inst, err := workload.NewDoS(cfg)
		return inst, n, cfg.BWidth(), err
	case "churn":
		inst, err := workload.NewChurn(workload.ChurnConfig{
			Planted: workload.PlantedConfig{
				N: n, M: m, Heavy: heavy, HeavyDeg: d,
				NoiseEdges: edges / 2, NoiseSkew: skew, MaxNoise: d / 3,
				Order: workload.Shuffled, Seed: seed,
			},
			ChurnEdges: edges,
			Seed:       seed,
		})
		return inst, n, m, err
	case "star":
		// A general graph streamed as its double cover: |A| = |B| = n
		// vertices, the planted center's degree is the d promise.
		inst, err := workload.NewStarGraph(workload.StarGraphConfig{
			Vertices: n, Degree: d, NoiseEdges: edges, MaxNoise: d / 3, Seed: seed,
		})
		return inst, n, n, err
	default:
		return nil, 0, 0, fmt.Errorf("fewwload: unknown scenario %q", scenario)
	}
}
