// Command fewwrun executes a FEwW algorithm over a stream file produced by
// fewwgen (or any writer of the internal/stream binary format) and reports
// the frequent element it found together with its witnesses.  The file is
// replayed incrementally, so arbitrarily large streams run in the
// algorithm's (sublinear) memory — the point of a streaming algorithm.
//
// Usage:
//
//	fewwrun -d 500 -alpha 2 stream.feww
//	fewwrun -model turnstile -d 50 -alpha 2 -scale 0.02 turnstile.feww
//	fewwrun -model star -alpha 2 friends.feww
package main

import (
	"flag"
	"fmt"
	"os"

	"feww"
	"feww/internal/stream"
)

func main() {
	var (
		model   = flag.String("model", "insert", "algorithm: insert | turnstile | star")
		d       = flag.Int64("d", 0, "degree threshold (required for insert/turnstile)")
		alpha   = flag.Int("alpha", 2, "approximation factor")
		scale   = flag.Float64("scale", 0, "sampler scale factor (turnstile; 0 = paper constants)")
		seed    = flag.Uint64("seed", 1, "random seed")
		maxWits = flag.Int("print", 16, "max witnesses to print")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fewwrun [flags] <stream file>  (see -help)")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	sc, err := stream.NewScanner(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("stream: n=%d m=%d updates=%d\n", sc.N(), sc.M(), sc.Total())

	nb, space, err := run(*model, *d, *alpha, *scale, *seed, sc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("result: vertex %d with %d witnesses (space: %d words)\n", nb.A, nb.Size(), space)
	wits := nb.Witnesses
	if len(wits) > *maxWits {
		wits = wits[:*maxWits]
	}
	fmt.Printf("witnesses: %v", wits)
	if nb.Size() > *maxWits {
		fmt.Printf(" ... (%d more)", nb.Size()-*maxWits)
	}
	fmt.Println()
}

// run replays the scanned stream through the selected algorithm.
func run(model string, d int64, alpha int, scale float64, seed uint64, sc *stream.Scanner) (feww.Neighbourhood, int, error) {
	var zero feww.Neighbourhood
	switch model {
	case "insert":
		if d < 1 {
			return zero, 0, fmt.Errorf("insert model requires -d >= 1")
		}
		algo, err := feww.NewInsertOnly(feww.Config{N: sc.N(), D: d, Alpha: alpha, Seed: seed})
		if err != nil {
			return zero, 0, err
		}
		for sc.Scan() {
			u := sc.Update()
			if u.Op == stream.Delete {
				return zero, 0, fmt.Errorf("stream contains deletions; use -model turnstile")
			}
			algo.ProcessEdge(u.A, u.B)
		}
		if err := sc.Err(); err != nil {
			return zero, 0, err
		}
		nb, err := algo.Result()
		return nb, algo.SpaceWords(), err
	case "turnstile":
		if d < 1 {
			return zero, 0, fmt.Errorf("turnstile model requires -d >= 1")
		}
		algo, err := feww.NewInsertDelete(feww.TurnstileConfig{
			N: sc.N(), M: sc.M(), D: d, Alpha: alpha, Seed: seed, ScaleFactor: scale,
		})
		if err != nil {
			return zero, 0, err
		}
		for sc.Scan() {
			u := sc.Update()
			if u.Op == stream.Delete {
				algo.Delete(u.A, u.B)
			} else {
				algo.Insert(u.A, u.B)
			}
		}
		if err := sc.Err(); err != nil {
			return zero, 0, err
		}
		nb, err := algo.Result()
		return nb, algo.SpaceWords(), err
	case "star":
		sd, err := feww.NewStarDetector(feww.StarConfig{N: sc.N(), Alpha: alpha, Seed: seed})
		if err != nil {
			return zero, 0, err
		}
		for sc.Scan() {
			u := sc.Update()
			if u.Op == stream.Delete {
				return zero, 0, fmt.Errorf("star model is insertion-only; deletions need a turnstile detector")
			}
			// One call per undirected edge; the detector mirrors it into
			// both orientations internally.
			if err := sd.ProcessEdge(u.A, u.B); err != nil {
				return zero, 0, err
			}
		}
		if err := sc.Err(); err != nil {
			return zero, 0, err
		}
		nb, err := sd.Result()
		return nb, sd.SpaceWords(), err
	default:
		return zero, 0, fmt.Errorf("unknown model %q", model)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fewwrun: %v\n", err)
	os.Exit(1)
}
