package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"feww"
	"feww/cluster"
	"feww/internal/stream"
	"feww/internal/xrand"
	"feww/server"
)

// The scaling and cluster modes extend the BENCH_mixed.json trajectory
// beyond the single-engine mixed benchmark: -mode scaling sweeps the
// sharded engine across shard counts, and -mode cluster measures the
// gateway's streaming ingest against the ?atomic=1 buffer-whole path on
// a 3-member in-process cluster (or an external gateway via -gateway).
// Both update their own section of the -out document and leave every
// other section — in particular the mixed numbers the -baseline gate
// reads — untouched, so the committed file accumulates one trajectory
// per dimension.

// shardPoint is one -mode scaling measurement.
type shardPoint struct {
	Shards        int     `json:"shards"`
	Producers     int     `json:"producers"`
	IngestSeconds float64 `json:"ingest_seconds"`
	IngestRate    float64 `json:"ingest_updates_per_sec"`
}

// clusterBench is the -mode cluster section: the same stream pushed
// through the gateway's streaming path and its ?atomic=1 path.
type clusterBench struct {
	Members          int     `json:"members"`
	ChunkUpdates     int     `json:"chunk_updates"`
	Edges            int     `json:"edges"`
	Seed             uint64  `json:"seed"`
	StreamingSeconds float64 `json:"streaming_seconds"`
	StreamingRate    float64 `json:"streaming_updates_per_sec"`
	AtomicSeconds    float64 `json:"atomic_seconds"`
	AtomicRate       float64 `json:"atomic_updates_per_sec"`
	StreamingSpeedup float64 `json:"streaming_speedup"`
	ResultsIdentical bool    `json:"results_identical"`
}

// loadReport reads an existing trajectory document so a mode can update
// its section in place; a missing or unparsable file yields a zero
// report to start from.
func loadReport(path string) mixedReport {
	var rep mixedReport
	raw, err := os.ReadFile(path)
	if err != nil {
		return mixedReport{}
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return mixedReport{}
	}
	return rep
}

// saveReport writes the trajectory document.
func saveReport(rep mixedReport, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runScaling measures sharded-engine ingest throughput across shard
// counts (1, 2, 4, ... up to maxShards) on the same Zipf workload as
// the mixed benchmark, and records the sweep in the out document's
// multi_shard section.  producers sets how many goroutines feed each
// engine concurrently (<= 0 means one): the sweep then measures the
// producers × shards surface a real deployment sees — a server's
// handlers or a gateway's replica fan-out pushing into the same engine
// at once — rather than a single serial caller.  Chunks are claimed
// from a shared cursor, so the concurrent-producer stream is the same
// multiset of edges in reservation order.
//
// With gate set, the run fails unless ingest at 4 shards beats ingest
// at 1 shard — the CI backstop that keeps multi-shard scaling from
// silently regressing back to a serial router.  The gate needs real
// parallelism to be meaningful, so it is skipped (with a note) when
// the sweep never reaches 4 shards or the host lacks 4 CPUs.
func runScaling(maxShards, producers, edgeCount int, seed uint64, outPath string, gate bool) error {
	const (
		n     = int64(1) << 18
		d     = 1000
		alpha = 2
		chunk = 4096
	)
	if maxShards <= 0 {
		maxShards = runtime.GOMAXPROCS(0)
	}
	if producers <= 0 {
		producers = 1
	}
	counts := []int{1}
	for s := 2; s < maxShards; s *= 2 {
		counts = append(counts, s)
	}
	if maxShards > 1 {
		counts = append(counts, maxShards)
	}

	rng := xrand.New(seed + 1)
	zipf := xrand.NewZipf(rng, 1.2, int(n))
	edges := make([]feww.Edge, edgeCount)
	for i := range edges {
		edges[i] = feww.Edge{A: int64(zipf.Next()), B: int64(i)}
	}
	fmt.Printf("shard-scaling benchmark: %d Zipf(1.2) edges over n = %d, d = %d, alpha = %d; %d producer(s)\n\n",
		edgeCount, n, d, alpha, producers)

	var points []shardPoint
	base := 0.0
	rateAt := map[int]float64{}
	for _, s := range counts {
		eng, err := feww.NewEngine(feww.EngineConfig{
			Config: feww.Config{N: n, D: d, Alpha: alpha, Seed: seed},
			Shards: s,
		})
		if err != nil {
			return err
		}
		var (
			cursor atomic.Int64
			wg     sync.WaitGroup
		)
		errs := make(chan error, producers)
		start := time.Now()
		wg.Add(producers)
		for p := 0; p < producers; p++ {
			go func() {
				defer wg.Done()
				for {
					off := int(cursor.Add(chunk)) - chunk
					if off >= len(edges) {
						return
					}
					end := min(off+chunk, len(edges))
					if err := eng.ProcessEdges(edges[off:end]); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			eng.Close()
			return err
		}
		if err := eng.Drain(); err != nil {
			eng.Close()
			return err
		}
		elapsed := time.Since(start)
		eng.Close()
		rate := float64(edgeCount) / elapsed.Seconds()
		if base == 0 {
			base = rate
		}
		rateAt[s] = rate
		points = append(points, shardPoint{
			Shards:        s,
			Producers:     producers,
			IngestSeconds: elapsed.Seconds(),
			IngestRate:    rate,
		})
		fmt.Printf("%3d shard(s)  %10.0f updates/s in %6.2fs  (%.2fx of 1 shard)\n",
			s, rate, elapsed.Seconds(), rate/base)
	}

	rep := loadReport(outPath)
	rep.MultiShard = points
	if err := saveReport(rep, outPath); err != nil {
		return err
	}
	fmt.Printf("\nwrote multi_shard section of %s\n", outPath)

	if gate {
		switch {
		case rateAt[4] == 0:
			fmt.Printf("scaling gate: skipped (sweep did not include 4 shards)\n")
		case runtime.GOMAXPROCS(0) < 4:
			fmt.Printf("scaling gate: skipped (GOMAXPROCS = %d < 4, no hardware parallelism to gate on)\n",
				runtime.GOMAXPROCS(0))
		case rateAt[4] < rateAt[1]:
			return fmt.Errorf("fewwbench: scaling gate: 4-shard ingest %.0f updates/s below 1-shard %.0f updates/s (%.2fx)",
				rateAt[4], rateAt[1], rateAt[4]/rateAt[1])
		default:
			fmt.Printf("scaling gate: ok (4-shard ingest %.2fx of 1-shard)\n", rateAt[4]/rateAt[1])
		}
	}
	return nil
}

// runCluster measures gateway ingest throughput — the streaming default
// against the ?atomic=1 buffer-whole path — and records the pair in the
// out document's cluster section.  With no -gateway it boots two
// identically-seeded 3-member in-process clusters (one per path) so it
// can also assert the two paths leave identical engine state; against
// an external gateway it only measures, sequentially, on live state.
func runCluster(edgeCount int, seed uint64, outPath, gatewayURL string) error {
	const (
		n       = int64(1) << 18
		d       = 1000
		alpha   = 2
		members = 3
	)
	rng := xrand.New(seed + 1)
	zipf := xrand.NewZipf(rng, 1.2, int(n))
	ups := make([]feww.Update, edgeCount)
	for i := range ups {
		ups[i] = stream.Ins(int64(zipf.Next()), int64(i))
	}
	var body bytes.Buffer
	if err := stream.WriteFile(&body, n, 0, ups); err != nil {
		return err
	}
	raw := body.Bytes()

	cb := clusterBench{Members: members, Edges: edgeCount, Seed: seed}

	post := func(base, query string) (float64, error) {
		start := time.Now()
		resp, err := http.Post(base+"/ingest"+query, "application/octet-stream", bytes.NewReader(raw))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var out server.IngestResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return 0, fmt.Errorf("ingest%s: decoding response (HTTP %d): %w", query, resp.StatusCode, err)
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("ingest%s: HTTP %d after %d accepted: %s", query, resp.StatusCode, out.Accepted, out.Error)
		}
		return time.Since(start).Seconds(), nil
	}
	results := func(base string) ([]byte, error) {
		resp, err := http.Get(base + "/results?fresh=1")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET /results?fresh=1: HTTP %d: %s", resp.StatusCode, buf.Bytes())
		}
		return buf.Bytes(), nil
	}

	if gatewayURL != "" {
		fmt.Printf("cluster benchmark: %d Zipf(1.2) updates against external gateway %s\n\n", edgeCount, gatewayURL)
		var err error
		if cb.StreamingSeconds, err = post(gatewayURL, ""); err != nil {
			return err
		}
		if cb.AtomicSeconds, err = post(gatewayURL, "?atomic=1"); err != nil {
			return err
		}
		// External state accumulates across the two runs; identity between
		// the paths is only checkable on fresh in-process clusters.
		cb.ResultsIdentical = false
		cb.ChunkUpdates = 0 // whatever the external gateway was started with
	} else {
		fmt.Printf("cluster benchmark: %d Zipf(1.2) updates over n = %d, d = %d, alpha = %d; %d in-process members\n\n",
			edgeCount, n, d, alpha, members)
		shardsPer := max(1, runtime.GOMAXPROCS(0)/members)
		boot := func() (*httptest.Server, func(), error) {
			var closers []func()
			urls := make([]string, members)
			for j, rng := range cluster.Split(n, members) {
				eng, err := feww.NewEngine(feww.EngineConfig{
					Config: feww.Config{N: rng.Len(), D: d, Alpha: alpha, Seed: seed + uint64(j)},
					Shards: shardsPer,
				})
				if err != nil {
					for _, c := range closers {
						c()
					}
					return nil, nil, err
				}
				be := server.NewInsertOnlyBackend(eng)
				ts := httptest.NewServer(server.New(be, server.Config{}).Handler())
				closers = append(closers, ts.Close, func() { be.Close() })
				urls[j] = ts.URL
			}
			g, err := cluster.New(cluster.Config{Members: urls})
			if err != nil {
				for _, c := range closers {
					c()
				}
				return nil, nil, err
			}
			gts := httptest.NewServer(g.Handler())
			closers = append(closers, gts.Close)
			return gts, func() {
				for i := len(closers) - 1; i >= 0; i-- {
					closers[i]()
				}
			}, nil
		}

		gwStream, closeStream, err := boot()
		if err != nil {
			return err
		}
		defer closeStream()
		gwAtomic, closeAtomic, err := boot()
		if err != nil {
			return err
		}
		defer closeAtomic()

		cb.ChunkUpdates = 8192 // the gateway default
		if cb.StreamingSeconds, err = post(gwStream.URL, ""); err != nil {
			return err
		}
		if cb.AtomicSeconds, err = post(gwAtomic.URL, "?atomic=1"); err != nil {
			return err
		}
		a, err := results(gwStream.URL)
		if err != nil {
			return err
		}
		b, err := results(gwAtomic.URL)
		if err != nil {
			return err
		}
		cb.ResultsIdentical = bytes.Equal(a, b)
		if !cb.ResultsIdentical {
			return fmt.Errorf("fewwbench: streaming and atomic ingest left different cluster state")
		}
	}

	cb.StreamingRate = float64(edgeCount) / cb.StreamingSeconds
	cb.AtomicRate = float64(edgeCount) / cb.AtomicSeconds
	cb.StreamingSpeedup = cb.StreamingRate / cb.AtomicRate
	fmt.Printf("streaming  %10.0f updates/s in %6.2fs\n", cb.StreamingRate, cb.StreamingSeconds)
	fmt.Printf("atomic     %10.0f updates/s in %6.2fs\n", cb.AtomicRate, cb.AtomicSeconds)
	fmt.Printf("\nstreaming speedup over atomic: %.2fx; results identical: %v\n",
		cb.StreamingSpeedup, cb.ResultsIdentical)

	rep := loadReport(outPath)
	rep.Cluster = &cb
	if err := saveReport(rep, outPath); err != nil {
		return err
	}
	fmt.Printf("wrote cluster section of %s\n", outPath)
	return nil
}
