// Command fewwbench regenerates the paper's evaluation artefacts.
//
// Each experiment id (E1-E10, F1-F3; see docs/EXPERIMENTS.md §3) validates the shape
// of one theorem or reproduces one worked figure, printing a table of
// measured values against the paper's claim.
//
// Usage:
//
//	fewwbench                      # run everything, quick sizes
//	fewwbench -full                # full sizes (minutes, the docs/EXPERIMENTS.md setting)
//	fewwbench -experiment E2,E6    # a subset
//	fewwbench -seed 7 -list        # enumerate ids
//	fewwbench -shards 8            # sharded-ingest throughput benchmark
//	fewwbench -mode mixed          # ingest+query benchmark, writes BENCH_mixed.json
//
// The mixed mode drives full-rate ingest while concurrent clients query,
// once against the barrier-free published path and once against the
// strict barrier path, and emits a machine-readable comparison (-out)
// for the performance trajectory; see docs/EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"feww"
	"feww/internal/experiments"
	"feww/internal/xrand"
)

func main() {
	var (
		expFlag   = flag.String("experiment", "", "comma-separated experiment ids (default: all)")
		seed      = flag.Uint64("seed", 1, "random seed; a fixed seed reproduces a run exactly")
		full      = flag.Bool("full", false, "full instance sizes (the docs/EXPERIMENTS.md setting; minutes instead of seconds)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		showTime  = flag.Bool("time", false, "print wall-clock time per experiment")
		mode      = flag.String("mode", "", "benchmark mode: mixed (full-rate ingest + concurrent queries), scaling (shard-count ingest sweep), cluster (gateway streaming vs ?atomic=1)")
		shards    = flag.Int("shards", 0, "run the sharded-ingest throughput benchmark with this many shards instead of the experiments (also the shard count for -mode mixed and the sweep ceiling for -mode scaling; 0 = GOMAXPROCS)")
		edges     = flag.Int("edges", 4_000_000, "stream length for the -shards and -mode benchmarks")
		clients   = flag.Int("clients", 8, "concurrent query clients for -mode mixed")
		producers = flag.Int("producers", 1, "concurrent producer goroutines per engine for -mode scaling")
		scalegate = flag.Bool("scalegate", false, "fail -mode scaling if 4-shard ingest falls below 1-shard ingest (skipped when the sweep or the host cannot reach 4-way parallelism)")
		out       = flag.String("out", "BENCH_mixed.json", "machine-readable trajectory path; each -mode updates its own section")
		baseline  = flag.String("baseline", "", "committed BENCH_mixed.json to gate -mode mixed against: fail if published-path queries/s regresses more than 15%")
		gateway   = flag.String("gateway", "", "external fewwgate base URL for -mode cluster (default: boot 3 in-process members)")
	)
	flag.Parse()

	switch *mode {
	case "mixed":
		if err := runMixed(*shards, *clients, *edges, *seed, *out, *baseline); err != nil {
			fmt.Fprintf(os.Stderr, "fewwbench: %v\n", err)
			os.Exit(1)
		}
		return
	case "scaling":
		if err := runScaling(*shards, *producers, *edges, *seed, *out, *scalegate); err != nil {
			fmt.Fprintf(os.Stderr, "fewwbench: %v\n", err)
			os.Exit(1)
		}
		return
	case "cluster":
		if err := runCluster(*edges, *seed, *out, *gateway); err != nil {
			fmt.Fprintf(os.Stderr, "fewwbench: %v\n", err)
			os.Exit(1)
		}
		return
	case "":
	default:
		fmt.Fprintf(os.Stderr, "fewwbench: unknown -mode %q (want mixed, scaling or cluster)\n", *mode)
		os.Exit(2)
	}

	if *shards > 0 {
		if err := runIngest(*shards, *edges, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "fewwbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.IDs()
	if *expFlag != "" {
		ids = nil
		for _, id := range strings.Split(*expFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	cfg := experiments.Config{Seed: *seed, Quick: !*full}
	exit := 0
	for _, id := range ids {
		start := time.Now()
		tab, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fewwbench: %s: %v\n", id, err)
			exit = 1
			continue
		}
		if err := tab.Format(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "fewwbench: %v\n", err)
			os.Exit(1)
		}
		if *showTime {
			fmt.Printf("(%s in %v)\n", id, time.Since(start).Round(time.Millisecond))
		}
		fmt.Println()
	}
	os.Exit(exit)
}

// runIngest measures ingest throughput on one Zipf-distributed stream
// through three paths: the per-edge single-instance API, the batched
// single-instance API, and the sharded engine — the three rungs of the
// batch-ingest ladder.
func runIngest(shards, edgeCount int, seed uint64) error {
	const (
		n     = int64(1) << 18
		d     = 1000
		alpha = 2
		chunk = 4096
	)
	fmt.Printf("ingest benchmark: %d Zipf(1.2) edges over n = %d, d = %d, alpha = %d\n\n",
		edgeCount, n, d, alpha)

	rng := xrand.New(seed + 1)
	zipf := xrand.NewZipf(rng, 1.2, int(n))
	stream := make([]feww.Edge, edgeCount)
	for i := range stream {
		stream[i] = feww.Edge{A: int64(zipf.Next()), B: int64(i)}
	}

	report := func(name string, elapsed time.Duration, found int) {
		rate := float64(edgeCount) / elapsed.Seconds() / 1e6
		fmt.Printf("%-28s %10v  %8.2f Medges/s  (%d frequent items found)\n",
			name, elapsed.Round(time.Millisecond), rate, found)
	}

	perEdge, err := feww.NewInsertOnly(feww.Config{N: n, D: d, Alpha: alpha, Seed: seed})
	if err != nil {
		return err
	}
	start := time.Now()
	for _, e := range stream {
		perEdge.ProcessEdge(e.A, e.B)
	}
	report("single instance, per-edge", time.Since(start), len(perEdge.Results()))

	batched, err := feww.NewInsertOnly(feww.Config{N: n, D: d, Alpha: alpha, Seed: seed})
	if err != nil {
		return err
	}
	start = time.Now()
	for off := 0; off < len(stream); off += chunk {
		end := off + chunk
		if end > len(stream) {
			end = len(stream)
		}
		batched.ProcessEdges(stream[off:end])
	}
	report("single instance, batched", time.Since(start), len(batched.Results()))

	for _, p := range []int{1, shards} {
		eng, err := feww.NewEngine(feww.EngineConfig{
			Config: feww.Config{N: n, D: d, Alpha: alpha, Seed: seed},
			Shards: p,
		})
		if err != nil {
			return err
		}
		start = time.Now()
		for off := 0; off < len(stream); off += chunk {
			end := off + chunk
			if end > len(stream) {
				end = len(stream)
			}
			eng.ProcessEdges(stream[off:end])
		}
		eng.Drain()
		elapsed := time.Since(start)
		report(fmt.Sprintf("engine, %d shard(s)", eng.Shards()), elapsed, len(eng.Results()))
		eng.Close()
		if p == 1 && shards == 1 {
			break
		}
	}
	return nil
}
