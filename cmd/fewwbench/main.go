// Command fewwbench regenerates the paper's evaluation artefacts.
//
// Each experiment id (E1-E10, F1-F3; see DESIGN.md §3) validates the shape
// of one theorem or reproduces one worked figure, printing a table of
// measured values against the paper's claim.
//
// Usage:
//
//	fewwbench                      # run everything, quick sizes
//	fewwbench -full                # full sizes (minutes, the EXPERIMENTS.md setting)
//	fewwbench -experiment E2,E6    # a subset
//	fewwbench -seed 7 -list        # enumerate ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"feww/internal/experiments"
)

func main() {
	var (
		expFlag  = flag.String("experiment", "", "comma-separated experiment ids (default: all)")
		seed     = flag.Uint64("seed", 1, "random seed; a fixed seed reproduces a run exactly")
		full     = flag.Bool("full", false, "full instance sizes (the EXPERIMENTS.md setting; minutes instead of seconds)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		showTime = flag.Bool("time", false, "print wall-clock time per experiment")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.IDs()
	if *expFlag != "" {
		ids = nil
		for _, id := range strings.Split(*expFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	cfg := experiments.Config{Seed: *seed, Quick: !*full}
	exit := 0
	for _, id := range ids {
		start := time.Now()
		tab, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fewwbench: %s: %v\n", id, err)
			exit = 1
			continue
		}
		if err := tab.Format(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "fewwbench: %v\n", err)
			os.Exit(1)
		}
		if *showTime {
			fmt.Printf("(%s in %v)\n", id, time.Since(start).Round(time.Millisecond))
		}
		fmt.Println()
	}
	os.Exit(exit)
}
