package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"feww"
	"feww/internal/benchstat"
	"feww/internal/xrand"
)

// The mixed benchmark measures the serving-path question the sharded
// engine exists to answer: how fast can concurrent clients query while
// ingest runs at full rate?  It runs the same Zipf stream twice — once
// with the query clients on the barrier-free published path (Best), once
// on the strict barrier path (BestFresh) — and reports ingest rate and
// query throughput/latency for both, plus the speedup and a determinism
// check that the two runs ended in identical final results.  The output
// goes to stdout as a table and to -out as machine-readable JSON, so CI
// can archive a trajectory across commits.

// phaseStats is one run's measurements.
type phaseStats struct {
	Mode          string  `json:"mode"` // "published" or "fresh"
	IngestSeconds float64 `json:"ingest_seconds"`
	IngestRate    float64 `json:"ingest_updates_per_sec"`
	Queries       int64   `json:"queries"`
	QueryRate     float64 `json:"queries_per_sec"`
	P50Micros     float64 `json:"query_p50_micros"`
	P99Micros     float64 `json:"query_p99_micros"`
}

// mixedReport is the BENCH_mixed.json document.
type mixedReport struct {
	N                int64      `json:"n"`
	D                int64      `json:"d"`
	Alpha            int        `json:"alpha"`
	Shards           int        `json:"shards"`
	Clients          int        `json:"clients"`
	Edges            int        `json:"edges"`
	Seed             uint64     `json:"seed"`
	Published        phaseStats `json:"published"`
	Fresh            phaseStats `json:"fresh"`
	QuerySpeedup     float64    `json:"query_speedup"`
	ResultsIdentical bool       `json:"results_identical"`

	// MultiShard and Cluster are the -mode scaling and -mode cluster
	// trajectory sections (see scale.go); each mode rewrites only its own
	// section, so the committed document carries all three.
	MultiShard []shardPoint  `json:"multi_shard,omitempty"`
	Cluster    *clusterBench `json:"cluster,omitempty"`
}

// runMixed executes both phases, writes the report, and — when a
// baseline trajectory point is given — gates the published-path query
// throughput against it.
func runMixed(shards, clients, edgeCount int, seed uint64, outPath, baselinePath string) error {
	const (
		n     = int64(1) << 18
		d     = 1000
		alpha = 2
		chunk = 4096
	)
	rng := xrand.New(seed + 1)
	zipf := xrand.NewZipf(rng, 1.2, int(n))
	edges := make([]feww.Edge, edgeCount)
	for i := range edges {
		edges[i] = feww.Edge{A: int64(zipf.Next()), B: int64(i)}
	}

	fmt.Printf("mixed benchmark: %d Zipf(1.2) edges over n = %d, d = %d, alpha = %d; %d query clients\n\n",
		edgeCount, n, d, alpha, clients)

	resolvedShards := shards
	run := func(fresh bool) (phaseStats, string, error) {
		eng, err := feww.NewEngine(feww.EngineConfig{
			Config: feww.Config{N: n, D: d, Alpha: alpha, Seed: seed},
			Shards: shards,
		})
		if err != nil {
			return phaseStats{}, "", err
		}
		defer eng.Close()
		resolvedShards = eng.Shards()

		stop := make(chan struct{})
		samplers := make([]benchstat.Sampler, clients)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					t0 := time.Now()
					if fresh {
						eng.BestFresh()
					} else {
						eng.Best()
					}
					samplers[c].Observe(time.Since(t0))
				}
			}(c)
		}

		start := time.Now()
		for off := 0; off < len(edges); off += chunk {
			end := min(off+chunk, len(edges))
			if err := eng.ProcessEdges(edges[off:end]); err != nil {
				close(stop)
				return phaseStats{}, "", err
			}
		}
		if err := eng.Drain(); err != nil {
			close(stop)
			return phaseStats{}, "", err
		}
		elapsed := time.Since(start)
		close(stop)
		wg.Wait()

		all, queries := benchstat.Merge(samplers)
		mode := "published"
		if fresh {
			mode = "fresh"
		}
		st := phaseStats{
			Mode:          mode,
			IngestSeconds: elapsed.Seconds(),
			IngestRate:    float64(edgeCount) / elapsed.Seconds(),
			Queries:       queries,
			QueryRate:     float64(queries) / elapsed.Seconds(),
			P50Micros:     benchstat.QuantileMicros(all, 0.50),
			P99Micros:     benchstat.QuantileMicros(all, 0.99),
		}
		// Drained engine: published == fresh, so this fingerprint is the
		// exact final answer and must match across phases (fixed seed).
		fp := fmt.Sprintf("%v", eng.Results())
		return st, fp, nil
	}

	pub, fpPub, err := run(false)
	if err != nil {
		return err
	}
	frs, fpFrs, err := run(true)
	if err != nil {
		return err
	}

	rep := mixedReport{
		N: n, D: d, Alpha: alpha, Shards: resolvedShards, Clients: clients,
		Edges: edgeCount, Seed: seed,
		Published:        pub,
		Fresh:            frs,
		ResultsIdentical: fpPub == fpFrs,
	}
	// Carry over the sections the other modes own, so re-running the
	// mixed benchmark does not erase the committed scaling trajectory.
	old := loadReport(outPath)
	rep.MultiShard = old.MultiShard
	rep.Cluster = old.Cluster
	if frs.QueryRate > 0 {
		rep.QuerySpeedup = pub.QueryRate / frs.QueryRate
	}

	for _, st := range []phaseStats{pub, frs} {
		fmt.Printf("%-10s  ingest %10.0f edges/s in %6.2fs   queries %9d (%10.0f q/s)  p50 %8.2fµs  p99 %8.2fµs\n",
			st.Mode, st.IngestRate, st.IngestSeconds, st.Queries, st.QueryRate, st.P50Micros, st.P99Micros)
	}
	fmt.Printf("\nquery speedup (published / fresh): %.1fx; final results identical: %v\n",
		rep.QuerySpeedup, rep.ResultsIdentical)
	if !rep.ResultsIdentical {
		return fmt.Errorf("fewwbench: mixed phases diverged — published-path reads perturbed the engine state")
	}

	if err := saveReport(rep, outPath); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	if baselinePath != "" {
		return checkBaseline(rep, baselinePath)
	}
	return nil
}

// maxQueryRegression is how much the published-path query throughput may
// fall below the committed trajectory point before the bench gate fails.
// The serving path is the product's hot path; a refactor that costs more
// than this must be noticed, not archived.
const maxQueryRegression = 0.15

// checkBaseline compares the fresh report against a committed
// BENCH_mixed.json and fails on a published-path queries/s regression
// beyond maxQueryRegression.  The runs must be configured identically —
// a 2M-edge run gated against a 4M-edge baseline measures the flag
// difference, not the code — so any workload-parameter mismatch is an
// explicit error, not a silent misfire.
func checkBaseline(rep mixedReport, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base mixedReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.Published.QueryRate <= 0 {
		return fmt.Errorf("baseline %s carries no published query rate", path)
	}
	if base.N != rep.N || base.D != rep.D || base.Alpha != rep.Alpha ||
		base.Edges != rep.Edges || base.Clients != rep.Clients || base.Seed != rep.Seed {
		return fmt.Errorf("baseline %s was measured with a different configuration (n=%d d=%d alpha=%d edges=%d clients=%d seed=%d; this run: n=%d d=%d alpha=%d edges=%d clients=%d seed=%d) — rerun with matching flags or regenerate the baseline",
			path, base.N, base.D, base.Alpha, base.Edges, base.Clients, base.Seed,
			rep.N, rep.D, rep.Alpha, rep.Edges, rep.Clients, rep.Seed)
	}
	ratio := rep.Published.QueryRate / base.Published.QueryRate
	fmt.Printf("baseline %s: published %0.f q/s, now %0.f q/s (%.2fx)\n",
		path, base.Published.QueryRate, rep.Published.QueryRate, ratio)
	if ratio < 1-maxQueryRegression {
		return fmt.Errorf("published-path query throughput regressed %.1f%% against %s (limit %.0f%%)",
			(1-ratio)*100, path, maxQueryRegression*100)
	}
	return nil
}
