// Command fewwgate serves a cluster of fewwd nodes as one logical FEwW
// engine: a scatter-gather gateway over a static contiguous partition of
// the item universe.  Ingest requests split by item id and fan out to
// the member owning each range; queries fan out and merge (concatenation
// for /results, max-select for /best, sums for /stats), with ?fresh=1
// forwarded to the members' strict-barrier path.  POST /rebalance moves
// a range between nodes by shipping the donor's snapshot into the
// target's restore path.
//
// Usage:
//
//	# three nodes, universe 0..999 split 334/333/333 (cluster.Split order)
//	fewwd -n 334 -d 50 -addr :9001 &
//	fewwd -n 333 -d 50 -addr :9002 &
//	fewwd -n 333 -d 50 -addr :9003 &
//	fewwgate -addr :9000 -members http://127.0.0.1:9001,http://127.0.0.1:9002,http://127.0.0.1:9003
//
// Member ranges are discovered from each node's /healthz: member j
// serves the j-th contiguous range, of length equal to its engine's
// universe.  Size the nodes with cluster.Split semantics — the first
// n mod k nodes get one extra item — or pick any sizes; the gateway's
// universe is simply their sum, in order.
//
// See docs/OPERATIONS.md for the cluster runbook (bootstrap, rebalance,
// node replacement).
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"feww/cluster"
)

func main() {
	var (
		addr    = flag.String("addr", ":9000", "listen address")
		members = flag.String("members", "", "comma-separated fewwd base URLs in range order (required)")
		timeout = flag.Duration("timeout", 30*time.Second, "per-member request timeout")
		wait    = flag.Duration("wait", 30*time.Second, "how long to wait for every member to become ready at startup")
		maxBody = flag.Int64("maxbody", 0, "max /ingest body bytes (0 = 256 MiB; only ?atomic=1 buffers requests decoded)")
		chunk   = flag.Int("chunk", 0, "streaming-ingest window in updates (0 = 8192): decoded, validated and forwarded per window")
	)
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*members, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		log.Fatal("fewwgate: -members is required (comma-separated fewwd base URLs)")
	}

	cfg := cluster.Config{Members: urls, MemberTimeout: *timeout, MaxBodyBytes: *maxBody, ChunkUpdates: *chunk}

	// Bootstrap: the members may still be starting (or restoring large
	// checkpoints), so construction — which probes every /healthz —
	// retries until the readiness window closes.
	var (
		g   *cluster.Gateway
		err error
	)
	deadline := time.Now().Add(*wait)
	for {
		g, err = cluster.New(cfg)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("fewwgate: members not ready after %v: %v", *wait, err)
		}
		log.Printf("fewwgate: waiting for members: %v", err)
		time.Sleep(500 * time.Millisecond)
	}

	n, m := g.Universe()
	log.Printf("fewwgate: %s cluster, %d members, universe n=%d m=%d, ranges %v, listening on %s (GET /healthz for readiness)",
		g.Kind(), len(urls), n, m, g.Ranges(), *addr)

	httpSrv := &http.Server{Addr: *addr, Handler: g.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("fewwgate: %v: draining", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("fewwgate: shutdown: %v", err)
	}
	// The gateway is stateless: every accepted update lives in a member
	// engine, so there is nothing to checkpoint here.  Members drain and
	// checkpoint themselves (see fewwd's shutdown hook).
}
