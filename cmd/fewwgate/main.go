// Command fewwgate serves a cluster of fewwd nodes as one logical FEwW
// engine: a scatter-gather gateway over a static contiguous partition of
// the item universe.  Ingest requests split by item id and fan out to
// the member owning each range; queries fan out and merge (concatenation
// for /results, max-select for /best, sums for /stats), with ?fresh=1
// forwarded to the members' strict-barrier path.  POST /rebalance moves
// a range between nodes by shipping the donor's snapshot into the
// target's restore path.
//
// With -replicas R the gateway keeps R copies of every range:
// consecutive runs of R members form one replica group, every ingest
// window fans out to all live replicas of the owning group, published
// reads rotate across replicas, and ?fresh=1 pins to each group's
// primary.  Members beyond the last full group are spares.  A
// reconciler loop (on by default, -reconcile-interval 0 disables)
// probes every node, marks dead replicas failed, promotes a follower
// when a primary dies, and re-seeds stale replicas or adopts spares by
// shipping the primary's snapshot — no operator action; GET /reconciler
// serves the decision log.
//
// Usage:
//
//	# three nodes, universe 0..999 split 334/333/333 (cluster.Split order)
//	fewwd -n 334 -d 50 -addr :9001 &
//	fewwd -n 333 -d 50 -addr :9002 &
//	fewwd -n 333 -d 50 -addr :9003 &
//	fewwgate -addr :9000 -members http://127.0.0.1:9001,http://127.0.0.1:9002,http://127.0.0.1:9003
//
//	# one range, two replicas, one spare: survives any single SIGKILL
//	fewwd -n 600 -d 50 -addr :9001 &
//	fewwd -n 600 -d 50 -addr :9002 &
//	fewwd -n 600 -d 50 -addr :9003 &
//	fewwgate -addr :9000 -replicas 2 \
//	    -members http://127.0.0.1:9001,http://127.0.0.1:9002,http://127.0.0.1:9003
//
// Member ranges are discovered from each node's /healthz: group j
// (members j*R .. j*R+R-1) serves the j-th contiguous range, of length
// equal to its engines' universe (replicas of a range must be sized
// identically).  Size the nodes with cluster.Split semantics — the first
// n mod k groups get one extra item — or pick any sizes; the gateway's
// universe is simply their sum, in order.
//
// See docs/OPERATIONS.md for the cluster runbook (bootstrap, rebalance,
// failover, node replacement).
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"feww/cluster"
)

func main() {
	var (
		addr     = flag.String("addr", ":9000", "listen address")
		members  = flag.String("members", "", "comma-separated fewwd base URLs in range order (required)")
		replicas = flag.Int("replicas", 1, "copies kept of every range; consecutive runs of this many members form one replica group, leftovers are spares")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-member request timeout")
		wait     = flag.Duration("wait", 30*time.Second, "how long to wait for every member to become ready at startup")
		maxBody  = flag.Int64("maxbody", 0, "max /ingest body bytes (0 = 256 MiB; only ?atomic=1 buffers requests decoded)")
		chunk    = flag.Int("chunk", 0, "streaming-ingest window in updates (0 = 8192): decoded, validated and forwarded per window")

		reconcile    = flag.Duration("reconcile-interval", time.Second, "reconciler tick interval (0 disables autonomous failover)")
		failAfter    = flag.Int("fail-after", 3, "consecutive probe failures before a replica is marked failed")
		probeTimeout = flag.Duration("probe-timeout", 2*time.Second, "reconciler health-probe timeout")
	)
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*members, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		log.Fatal("fewwgate: -members is required (comma-separated fewwd base URLs)")
	}

	cfg := cluster.Config{Members: urls, Replicas: *replicas, MemberTimeout: *timeout, MaxBodyBytes: *maxBody, ChunkUpdates: *chunk}

	// Bootstrap: the members may still be starting (or restoring large
	// checkpoints), so construction — which probes every /healthz —
	// retries until the readiness window closes.
	var (
		g   *cluster.Gateway
		err error
	)
	deadline := time.Now().Add(*wait)
	for {
		g, err = cluster.New(cfg)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("fewwgate: members not ready after %v: %v", *wait, err)
		}
		log.Printf("fewwgate: waiting for members: %v", err)
		time.Sleep(500 * time.Millisecond)
	}

	n, m := g.Universe()
	log.Printf("fewwgate: %s cluster, %d members, %d replicas per range, universe n=%d m=%d, ranges %v, listening on %s (GET /healthz for readiness, GET /reconciler for failover state)",
		g.Kind(), len(urls), g.Replicas(), n, m, g.Ranges(), *addr)

	var recon *cluster.Reconciler
	if *reconcile > 0 {
		recon = g.StartReconciler(cluster.ReconcilerConfig{
			Interval: *reconcile, FailAfter: *failAfter, ProbeTimeout: *probeTimeout,
		})
	} else {
		log.Printf("fewwgate: reconciler disabled (-reconcile-interval 0): failover is manual via POST /rebalance")
	}

	httpSrv := &http.Server{Addr: *addr, Handler: g.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("fewwgate: %v: draining", sig)
	}
	if recon != nil {
		recon.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("fewwgate: shutdown: %v", err)
	}
	// The gateway is stateless: every accepted update lives in a member
	// engine, so there is nothing to checkpoint here.  Members drain and
	// checkpoint themselves (see fewwd's shutdown hook).
}
