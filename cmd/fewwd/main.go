// Command fewwd serves a sharded FEwW engine over HTTP: binary stream
// ingest, live witnessed-neighbourhood queries, operational stats, and
// checkpoint/restore.  It is the long-running form of the library — the
// paper's streaming algorithm kept resident so traffic can be fed to it
// from the network and queried while the stream is still arriving.
//
// Usage:
//
//	fewwd -n 1000000 -d 5000 -alpha 2 -addr :8080 -checkpoint /var/lib/feww.ckpt
//	fewwd -restore /var/lib/feww.ckpt -addr :8080 -checkpoint /var/lib/feww.ckpt
//	fewwd -algo turnstile -n 100000 -m 400000 -d 500 -scale 0.05 -addr :8080
//	fewwd -algo star -n 100000 -eps 0.5 -alpha 2 -addr :8080
//	fewwd -algo star -n 25000 -m 100000 -addr :8081   (cluster member: 25k-vertex range of a 100k-vertex graph)
//	fewwd -algo window -n 100000 -d 200 -window 1000000 -buckets 8 -addr :8080
//
// All four engine kinds are façades over the same sharded runtime, so
// the endpoint surface, consistency contract (?fresh=1), checkpointing
// and cluster behaviour are identical; -algo picks the algorithm.  The
// star engine consumes directed half-edges (cmd/fewwgen -kind star
// writes the double cover) and answers with the best star: a vertex plus
// a rung-annotated set of its genuine neighbours.  The window engine
// answers over the last -window accepted updates only (aging out whole
// -buckets sub-windows at a time), so its /stats additionally report the
// served window span.
//
// With -restore the engine kind, universe, seed and shard layout all come
// from the snapshot file; the engine flags are ignored.  On SIGINT/SIGTERM
// the server drains in-flight requests, writes a final checkpoint (when
// -checkpoint is set) and exits, so a restart with -restore resumes the
// stream without losing an accepted edge.
//
// See docs/OPERATIONS.md for the full runbook.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"feww"
	"feww/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		algo       = flag.String("algo", "", "engine kind: insert (default) | turnstile | star | window")
		turnstile  = flag.Bool("turnstile", false, "deprecated alias for -algo turnstile")
		n          = flag.Int64("n", 1_000_000, "item universe size |A| (star: vertices this node owns as star centers)")
		m          = flag.Int64("m", 0, "witness universe size |B| (turnstile: default 4n; star: total graph vertices, default n)")
		d          = flag.Int64("d", 5000, "degree/frequency threshold (unused by star, whose guess ladder covers all degrees)")
		alpha      = flag.Int("alpha", 2, "approximation factor")
		eps        = flag.Float64("eps", 0, "star guess-ladder density (0 = 0.5; final ratio is (1+eps)*alpha)")
		seed       = flag.Uint64("seed", 1, "random seed")
		scale      = flag.Float64("scale", 0, "scale factor (0 = paper constants; turnstile runs usually need 0.01-0.1)")
		shards     = flag.Int("shards", 0, "shard count (0 = GOMAXPROCS)")
		batch      = flag.Int("batch", 0, "edges per shard hand-off batch (0 = default)")
		queue      = flag.Int("queue", 0, "per-shard queue depth in batches (0 = default)")
		checkpoint = flag.String("checkpoint", "", "path POST /checkpoint and the shutdown hook write the snapshot to")
		restore    = flag.String("restore", "", "restore the engine from this snapshot file instead of starting empty")
		maxBody    = flag.Int64("maxbody", 0, "max /ingest body bytes (0 = 1 GiB)")
		window     = flag.Int64("window", 0, "window: sliding window length in accepted updates (required for -algo window)")
		buckets    = flag.Int64("buckets", 0, "window: sub-window bucket count (0 = 8; more buckets = finer expiry, more space)")
	)
	flag.Parse()

	kind := *algo
	if kind == "" {
		kind = "insert"
		if *turnstile {
			kind = "turnstile"
		}
	} else if *turnstile && kind != "turnstile" {
		// A migration leftover must fail fast, not silently boot the
		// -algo kind and surface as ingest 400s later.
		log.Fatalf("fewwd: -turnstile conflicts with -algo %s (drop the deprecated -turnstile flag)", kind)
	}

	backend, err := buildBackend(*restore, kind, *n, *m, *d, *alpha, *eps, *seed, *scale, *shards, *batch, *queue, *window, *buckets)
	if err != nil {
		log.Fatal(err)
	}

	srv := server.New(backend, server.Config{CheckpointPath: *checkpoint, MaxBodyBytes: *maxBody})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	log.Printf("fewwd: %s engine, %d shards, %d elements restored, listening on %s (GET /healthz for readiness)",
		backend.Kind(), backend.Shards(), backend.Processed(), *addr)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("fewwd: %v: draining", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		// Graceful drain timed out with handlers still running.  Force
		// the connections closed before checkpointing, so no handler can
		// ingest past the snapshot and still hand its client a 200 for
		// edges the checkpoint missed.
		log.Printf("fewwd: shutdown: %v; closing connections", err)
		httpSrv.Close()
	}
	if *checkpoint != "" {
		size, err := srv.Checkpoint()
		if err != nil {
			log.Printf("fewwd: final checkpoint: %v", err)
		} else {
			log.Printf("fewwd: final checkpoint: %d bytes to %s", size, *checkpoint)
		}
	}
	// Close the backend the server *currently* holds: a POST /restore
	// (cluster rebalance) may have replaced the one built at startup.
	srv.Backend().Close()
}

// buildBackend restores from a snapshot file or constructs a fresh engine
// of the requested kind.
func buildBackend(restore, kind string, n, m, d int64, alpha int, eps float64, seed uint64, scale float64, shards, batch, queue int, window, buckets int64) (server.Backend, error) {
	if restore != "" {
		f, err := os.Open(restore)
		if err != nil {
			return nil, fmt.Errorf("fewwd: -restore: %w", err)
		}
		defer f.Close()
		backend, err := server.RestoreBackend(f)
		if err != nil {
			return nil, fmt.Errorf("fewwd: restoring %s: %w", restore, err)
		}
		return backend, nil
	}
	switch kind {
	case "turnstile":
		if m == 0 {
			m = 4 * n
		}
		eng, err := feww.NewTurnstileEngine(feww.TurnstileEngineConfig{
			TurnstileConfig: feww.TurnstileConfig{
				N: n, M: m, D: d, Alpha: alpha, Seed: seed, ScaleFactor: scale,
			},
			Shards: shards, BatchSize: batch, QueueDepth: queue,
		})
		if err != nil {
			return nil, fmt.Errorf("fewwd: %w (turnstile instances usually need -scale 0.01-0.1)", err)
		}
		return server.NewTurnstileBackend(eng), nil
	case "star":
		eng, err := feww.NewStarEngine(feww.StarEngineConfig{
			N: n, M: m, Alpha: alpha, Eps: eps, Seed: seed, ScaleFactor: scale,
			Shards: shards, BatchSize: batch, QueueDepth: queue,
		})
		if err != nil {
			return nil, fmt.Errorf("fewwd: %w", err)
		}
		return server.NewStarBackend(eng), nil
	case "window":
		eng, err := feww.NewWindowEngine(feww.WindowEngineConfig{
			Config: feww.Config{N: n, D: d, Alpha: alpha, Seed: seed, ScaleFactor: scale},
			Window: window, Buckets: buckets,
			Shards: shards, BatchSize: batch, QueueDepth: queue,
		})
		if err != nil {
			return nil, fmt.Errorf("fewwd: %w (-algo window needs -window; see -buckets for the expiry granularity)", err)
		}
		return server.NewWindowBackend(eng), nil
	case "insert":
		eng, err := feww.NewEngine(feww.EngineConfig{
			Config: feww.Config{N: n, D: d, Alpha: alpha, Seed: seed, ScaleFactor: scale},
			Shards: shards, BatchSize: batch, QueueDepth: queue,
		})
		if err != nil {
			return nil, fmt.Errorf("fewwd: %w", err)
		}
		return server.NewInsertOnlyBackend(eng), nil
	default:
		return nil, fmt.Errorf("fewwd: unknown -algo %q (want insert, turnstile, star or window)", kind)
	}
}
