// Command fewwgen generates workload stream files for fewwrun.
//
// Every generator plants known heavy vertices inside realistic noise (the
// paper's §1 motivating applications) and writes the stream in the binary
// format of internal/stream.  The ground-truth heavy vertices are printed
// to stderr so runs can be checked.
//
// Usage:
//
//	fewwgen -kind planted -n 10000 -d 500 -out stream.feww
//	fewwgen -kind dos -n 1000 -d 2000 -out attack.feww
//	fewwgen -kind zipf -n 5000 -edges 100000 -d 200 -out items.feww
//	fewwgen -kind churn -n 500 -d 50 -out turnstile.feww
//	fewwgen -kind social -n 5000 -out friends.feww
//	fewwgen -kind star -n 2000 -d 300 -out stars.feww       (fewwd -algo star)
//	fewwgen -kind starchurn -n 2000 -d 300 -out starts.feww (turnstile ladder)
//	fewwgen -kind windowzipf -n 5000 -edges 100000 -phases 4 -out rotate.feww  (fewwd -algo window)
//	fewwgen -kind windowburst -n 1000 -d 50 -window 2000 -buckets 8 -heavy 5 -out bursts.feww
//
// The star kinds generate a general n-vertex graph with a planted
// maximum-degree star, written as the directed double cover (both
// orientations of every undirected edge), which is what the star tier
// consumes; starchurn adds insert-then-delete noise, making a turnstile
// stream for the TurnstileStarDetector.  The stream declares |A| = |B| = n.
//
// The window kinds target fewwd -algo window.  windowzipf is a zipfian
// item stream whose heavy head rotates every phase, so a sliding window
// tracks the current phase while a whole-stream engine stays stuck on
// the early ones; windowburst places -heavy bursts of -d occurrences so
// each straddles a bucket boundary of the declared -window/-buckets
// geometry, the adversarial case for whole-bucket expiry.  Occurrence t
// is written as edge (item, t), so |B| is the stream length.
package main

import (
	"flag"
	"fmt"
	"os"

	"feww/internal/stream"
	"feww/internal/workload"
)

func main() {
	var (
		kind     = flag.String("kind", "planted", "workload: planted | dos | zipf | dblog | churn | social | star | starchurn | windowzipf | windowburst")
		n        = flag.Int64("n", 10000, "item universe size |A| (vertices for social)")
		m        = flag.Int64("m", 0, "witness universe size |B| (default 4n)")
		d        = flag.Int64("d", 500, "heavy degree / frequency threshold")
		heavy    = flag.Int("heavy", 1, "number of planted heavy vertices")
		edges    = flag.Int("edges", 0, "noise/stream edges (default 4n)")
		skew     = flag.Float64("skew", 1.2, "Zipf exponent of the noise")
		maxNoise = flag.Int64("maxnoise", 0, "cap on any noise vertex's degree (default d/3)")
		seed     = flag.Uint64("seed", 1, "random seed")
		out      = flag.String("out", "", "output file (default stdout)")
		phases   = flag.Int("phases", 4, "windowzipf: heavy-head rotations over the stream")
		window   = flag.Int64("window", 0, "windowburst: the consumer's window length (required)")
		buckets  = flag.Int64("buckets", 8, "windowburst: the consumer's bucket count")
	)
	flag.Parse()

	if *kind == "star" || *kind == "starchurn" {
		// Star streams are directed half-edges over one vertex set: the
		// witness universe IS the vertex universe.  An explicit -m that
		// disagrees is a misunderstanding to surface, not to overwrite.
		if *m != 0 && *m != *n {
			fmt.Fprintf(os.Stderr, "fewwgen: -kind %s: -m %d conflicts with -n %d (star streams have |B| = |A| = n; drop -m)\n", *kind, *m, *n)
			os.Exit(2)
		}
		*m = *n
	}
	if *m == 0 {
		*m = 4 * *n
	}
	if *edges == 0 {
		*edges = int(4 * *n)
	}

	if *maxNoise == 0 {
		*maxNoise = *d / 3
	}
	inst, err := generate(*kind, *n, *m, *d, *heavy, *edges, *skew, *maxNoise, *seed, *phases, *window, *buckets)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fewwgen: %v\n", err)
		os.Exit(1)
	}
	if *kind == "windowzipf" || *kind == "windowburst" {
		// Witnesses are arrival positions, so the witness universe is the
		// stream length.
		*m = int64(len(inst.Updates))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fewwgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := stream.WriteFile(w, *n, *m, inst.Updates); err != nil {
		fmt.Fprintf(os.Stderr, "fewwgen: %v\n", err)
		os.Exit(1)
	}
	stats := stream.Summarize(inst.Updates)
	fmt.Fprintf(os.Stderr, "fewwgen: %d updates, %d live edges, max degree %d\n",
		len(inst.Updates), stats.LiveEdges, stats.MaxDegreeA)
	if len(inst.HeavyA) > 0 {
		fmt.Fprintf(os.Stderr, "fewwgen: planted heavy vertices: %v\n", inst.HeavyA)
	}
}

func generate(kind string, n, m, d int64, heavy, edges int, skew float64, maxNoise int64, seed uint64, phases int, window, buckets int64) (*workload.Planted, error) {
	switch kind {
	case "planted":
		return workload.NewPlanted(workload.PlantedConfig{
			N: n, M: m, Heavy: heavy, HeavyDeg: d,
			NoiseEdges: edges, NoiseSkew: skew, MaxNoise: maxNoise,
			Order: workload.Shuffled, Seed: seed,
		})
	case "dos":
		return workload.NewDoS(workload.DoSConfig{
			Targets: n, Sources: m / 64, Window: 64,
			Victims: heavy, AttackReqs: d, Background: edges, Seed: seed,
		})
	case "zipf":
		return workload.ZipfItems(seed, n, edges, skew, d), nil
	case "dblog":
		return workload.NewDBLog(workload.DBLogConfig{
			Entries: n, Users: m / 256, Commits: 256,
			Hot: heavy, HotRate: d, ColdOps: edges, Seed: seed,
		})
	case "churn":
		return workload.NewChurn(workload.ChurnConfig{
			Planted: workload.PlantedConfig{
				N: n, M: m, Heavy: heavy, HeavyDeg: d,
				NoiseEdges: edges / 2, NoiseSkew: skew, MaxNoise: maxNoise,
				Order: workload.Shuffled, Seed: seed,
			},
			ChurnEdges: edges / 2,
			Seed:       seed,
		})
	case "social":
		ups := workload.SocialGraph(seed, int(n), 4)
		return &workload.Planted{Updates: ups}, nil
	case "star":
		return workload.NewStarGraph(workload.StarGraphConfig{
			Vertices: n, Degree: d, NoiseEdges: edges, MaxNoise: maxNoise, Seed: seed,
		})
	case "starchurn":
		return workload.NewStarGraph(workload.StarGraphConfig{
			Vertices: n, Degree: d, NoiseEdges: edges, MaxNoise: maxNoise,
			Churn: edges / 2, Seed: seed,
		})
	case "windowzipf":
		return workload.NewWindowZipf(workload.WindowZipfConfig{
			N: n, Total: edges, Phases: phases, Skew: skew, Seed: seed,
		})
	case "windowburst":
		return workload.NewWindowBurst(workload.WindowBurstConfig{
			N: n, Window: window, Buckets: buckets,
			Bursts: heavy, BurstLen: d, Seed: seed,
		})
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
