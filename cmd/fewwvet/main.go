// Command fewwvet runs the repo's project-specific analyzers over the
// module.  It is a miniature multichecker built on the standard library
// (see internal/analysis): packages named by go-list patterns are
// typechecked from source with imports resolved from gc export data, and
// each analyzer inspects the typed syntax.
//
// Usage:
//
//	go run ./cmd/fewwvet ./...
//	go run ./cmd/fewwvet -run viewimmut,lockorder ./cluster
//	go run ./cmd/fewwvet -run fieldalign ./...   # advisory layout report
//
// With no -run flag the five invariant analyzers run: viewimmut,
// epochstore, poolescape, lockorder, retrysafe.  fieldalign is advisory
// and only runs when named.  Findings print as file:line:col: message
// [analyzer] and make the command exit 1; suppress a deliberate
// exception with `//fewwvet:ignore <analyzer> <reason>` on or above the
// flagged line (docs/ANALYSIS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"feww/internal/analysis"
	"feww/internal/analysis/epochstore"
	"feww/internal/analysis/fieldalign"
	"feww/internal/analysis/load"
	"feww/internal/analysis/lockorder"
	"feww/internal/analysis/poolescape"
	"feww/internal/analysis/retrysafe"
	"feww/internal/analysis/viewimmut"
)

// defaultAnalyzers run without -run; optInAnalyzers only when named.
var (
	defaultAnalyzers = []*analysis.Analyzer{
		viewimmut.Analyzer,
		epochstore.Analyzer,
		poolescape.Analyzer,
		lockorder.Analyzer,
		retrysafe.Analyzer,
	}
	optInAnalyzers = []*analysis.Analyzer{
		fieldalign.Analyzer,
	}
)

func main() {
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all invariant analyzers)")
	listFlag := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = usage
	flag.Parse()

	all := append(append([]*analysis.Analyzer(nil), defaultAnalyzers...), optInAnalyzers...)
	if *listFlag {
		for _, a := range all {
			optin := ""
			if isOptIn(a) {
				optin = " (opt-in)"
			}
			fmt.Printf("%-12s %s%s\n", a.Name, a.Doc, optin)
		}
		return
	}

	analyzers, err := selectAnalyzers(all, *runFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fewwvet:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fewwvet: load:", err)
		os.Exit(2)
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		ds, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fewwvet: %s: %v\n", pkg.ImportPath, err)
			os.Exit(2)
		}
		diags = append(diags, ds...)
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func isOptIn(a *analysis.Analyzer) bool {
	for _, o := range optInAnalyzers {
		if o == a {
			return true
		}
	}
	return false
}

// selectAnalyzers resolves the -run flag against the registry.
func selectAnalyzers(all []*analysis.Analyzer, runFlag string) ([]*analysis.Analyzer, error) {
	if runFlag == "" {
		return defaultAnalyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(runFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run -list for the registry)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run selected no analyzers")
	}
	return out, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: fewwvet [-run name,name] [-list] [packages]\n\n")
	fmt.Fprintf(os.Stderr, "Runs feww's project-specific invariant analyzers (docs/ANALYSIS.md).\n\n")
	flag.PrintDefaults()
}
